// Arrival-process tests: determinism (pure function of config + seed),
// strict monotonicity, and the rate shapes of the three traffic regimes.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "serve/arrival.h"

namespace dlion::serve {
namespace {

std::vector<common::SimTime> draw(const ArrivalConfig& config,
                                  std::uint64_t seed, std::size_t n) {
  ArrivalProcess p(config, seed);
  std::vector<common::SimTime> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(p.next());
  return out;
}

TEST(Arrival, SameSeedSameSequence) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kBursty;
  const auto a = draw(config, 7, 500);
  const auto b = draw(config, 7, 500);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "arrival " << i;  // bitwise, not approximate
  }
}

TEST(Arrival, DifferentSeedDifferentSequence) {
  ArrivalConfig config;
  const auto a = draw(config, 1, 100);
  const auto b = draw(config, 2, 100);
  EXPECT_NE(a, b);
}

TEST(Arrival, TimesStrictlyIncrease) {
  for (ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    ArrivalConfig config;
    config.kind = kind;
    const auto times = draw(config, 11, 1000);
    for (std::size_t i = 1; i < times.size(); ++i) {
      EXPECT_GT(times[i], times[i - 1])
          << arrival_kind_name(kind) << " arrival " << i;
    }
  }
}

TEST(Arrival, PoissonLongRunRateMatchesConfig) {
  ArrivalConfig config;
  config.rate_rps = 200.0;
  ArrivalProcess p(config, 3);
  std::size_t count = 0;
  const double horizon = 100.0;
  while (p.next() < horizon) ++count;
  // 20000 expected arrivals, stddev ~sqrt(20000) ~ 141: 5% is ~7 sigma.
  EXPECT_NEAR(static_cast<double>(count) / horizon, config.rate_rps,
              0.05 * config.rate_rps);
}

TEST(Arrival, PoissonRateIsStationary) {
  ArrivalConfig config;
  config.rate_rps = 123.0;
  ArrivalProcess p(config, 1);
  for (double t : {0.0, 1.0, 50.0, 1e4}) {
    EXPECT_DOUBLE_EQ(p.rate_at(t), 123.0);
  }
  EXPECT_DOUBLE_EQ(p.peak_rate(), 123.0);
}

TEST(Arrival, BurstyRateShape) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kBursty;
  config.rate_rps = 100.0;
  config.burst_factor = 4.0;
  config.burst_period_s = 20.0;
  config.burst_duration_s = 3.0;
  ArrivalProcess p(config, 1);
  // Inside each period's burst window the rate multiplies; outside it is
  // the base rate.
  EXPECT_DOUBLE_EQ(p.rate_at(1.0), 400.0);
  EXPECT_DOUBLE_EQ(p.rate_at(21.5), 400.0);
  EXPECT_DOUBLE_EQ(p.rate_at(10.0), 100.0);
  EXPECT_DOUBLE_EQ(p.rate_at(19.9), 100.0);
  EXPECT_DOUBLE_EQ(p.peak_rate(), 400.0);
}

TEST(Arrival, BurstWindowsCarryMoreTraffic) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kBursty;
  config.rate_rps = 100.0;
  config.burst_factor = 4.0;
  config.burst_period_s = 20.0;
  config.burst_duration_s = 3.0;
  ArrivalProcess p(config, 5);
  // Count arrivals in burst windows [k*20, k*20+3) vs an equal-length
  // quiet stretch [k*20+10, k*20+13) over many periods.
  std::size_t burst = 0, quiet = 0;
  for (double t = p.next(); t < 400.0; t = p.next()) {
    const double phase = std::fmod(t, config.burst_period_s);
    if (phase < 3.0) ++burst;
    if (phase >= 10.0 && phase < 13.0) ++quiet;
  }
  EXPECT_GT(burst, 2 * quiet);
}

TEST(Arrival, DiurnalRateShape) {
  ArrivalConfig config;
  config.kind = ArrivalKind::kDiurnal;
  config.rate_rps = 300.0;
  config.diurnal_period_s = 120.0;
  config.diurnal_min_frac = 0.1;
  ArrivalProcess p(config, 1);
  // The day starts at the night minimum and peaks half a period later.
  EXPECT_NEAR(p.rate_at(0.0), 30.0, 1e-9);
  EXPECT_NEAR(p.rate_at(60.0), 300.0, 1e-9);
  EXPECT_NEAR(p.rate_at(120.0), 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.peak_rate(), 300.0);
  // The wave stays within [min_frac * rate, rate].
  for (double t = 0.0; t < 240.0; t += 7.0) {
    EXPECT_GE(p.rate_at(t), 30.0 - 1e-9);
    EXPECT_LE(p.rate_at(t), 300.0 + 1e-9);
  }
}

TEST(Arrival, KindNames) {
  EXPECT_STREQ(arrival_kind_name(ArrivalKind::kPoisson), "poisson");
  EXPECT_STREQ(arrival_kind_name(ArrivalKind::kBursty), "bursty");
  EXPECT_STREQ(arrival_kind_name(ArrivalKind::kDiurnal), "diurnal");
}

}  // namespace
}  // namespace dlion::serve

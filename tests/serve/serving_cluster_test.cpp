// Serving tier wired into the training cluster: the co-simulation
// contract. With publishing off, serving must not perturb training at all
// (bit-identical weights, curve, traffic); with publishing on, replicas
// track the freshest worker. Also covers the exp::RunSpec plumbing, the
// obs on/off identity, thread-count invariance, and the serving+elastic
// exclusivity check.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/cluster.h"
#include "data/synthetic.h"
#include "exp/environments.h"
#include "exp/experiment.h"
#include "obs/obs.h"
#include "systems/registry.h"

namespace dlion {
namespace {

data::TrainTest blobs_data() { return data::make_blobs(11, 16, 4, 1024, 256); }

core::ClusterSpec base_spec(std::size_t n_workers, double duration) {
  const systems::SystemSpec system = systems::make_system("dlion");
  core::ClusterSpec spec;
  spec.model = "logreg";
  spec.seed = 7;
  spec.duration_s = duration;
  for (std::size_t i = 0; i < n_workers; ++i) {
    spec.compute.push_back(exp::cpu_cores(4));
  }
  spec.strategy_factory = system.strategy_factory;
  core::WorkerOptions options;
  options.learning_rate = 0.4;
  options.eval_period_iters = 10;
  options.gbs.initial_gbs = 16 * n_workers;
  options.fixed_lbs = 16;
  options.dkt.period_iters = 25;
  system.configure(options);
  spec.worker_options = options;
  return spec;
}

serve::ServingSpec quiet_serving() {
  serve::ServingSpec s;
  s.replicas = 2;
  s.arrival.rate_rps = 100.0;
  s.publish_period_s = 0.0;  // refresh off: training must be untouched
  return s;
}

/// FNV-1a over every worker's weight bytes: the strongest "training was
/// not perturbed" witness.
std::uint64_t weights_checksum(core::Cluster& cluster, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t w = 0; w < n; ++w) {
    const nn::Snapshot snap = cluster.worker(w).model().weights();
    for (const auto& t : snap.values) {
      for (const float v : t.span()) {
        std::uint32_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        for (int b = 0; b < 4; ++b) {
          h ^= (bits >> (8 * b)) & 0xff;
          h *= 1099511628211ull;
        }
      }
    }
  }
  return h;
}

struct TrainOut {
  std::uint64_t weights_hash = 0;
  std::uint64_t iterations = 0;
  common::Bytes bytes = 0;
  std::vector<sim::TracePoint> curve;
};

TrainOut run_training(const core::ClusterSpec& spec) {
  const data::TrainTest data = blobs_data();
  core::Cluster cluster(spec, data.train, data.test);
  cluster.run();
  TrainOut out;
  out.weights_hash = weights_checksum(cluster, spec.compute.size());
  out.iterations = cluster.total_iterations();
  out.bytes = cluster.total_bytes_sent();
  out.curve = cluster.mean_accuracy_trace().points();
  return out;
}

TEST(ServingCluster, QuietServingLeavesTrainingBitIdentical) {
  core::ClusterSpec plain = base_spec(2, 60.0);
  core::ClusterSpec serving = base_spec(2, 60.0);
  serving.serving = quiet_serving();

  const TrainOut a = run_training(plain);
  const TrainOut b = run_training(serving);
  EXPECT_EQ(a.weights_hash, b.weights_hash);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.bytes, b.bytes);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].time, b.curve[i].time) << "point " << i;
    EXPECT_EQ(a.curve[i].value, b.curve[i].value) << "point " << i;
  }
}

TEST(ServingCluster, ServingAndElasticAreMutuallyExclusive) {
  core::ClusterSpec spec = base_spec(2, 20.0);
  spec.serving = quiet_serving();
  spec.elastic = core::ElasticSpec{};
  const data::TrainTest data = blobs_data();
  EXPECT_THROW(core::Cluster(spec, data.train, data.test),
               std::invalid_argument);
}

TEST(ServingCluster, PublishingTracksTheFreshestWorker) {
  core::ClusterSpec spec = base_spec(2, 60.0);
  spec.serving = quiet_serving();
  spec.serving->publish_period_s = 15.0;
  const data::TrainTest data = blobs_data();
  core::Cluster cluster(spec, data.train, data.test);
  cluster.run();
  ASSERT_NE(cluster.serving(), nullptr);
  const serve::ServingStats& s = cluster.serving()->stats();
  // Publishes at t = 15, 30, 45; every replica adopts every version.
  EXPECT_EQ(s.refreshes_published, 3u);
  EXPECT_EQ(s.refreshes_adopted, 3u * 2u);
  for (std::size_t r = 0; r < cluster.serving()->num_replicas(); ++r) {
    EXPECT_EQ(cluster.serving()->replica(r).weight_version(), 3u);
    EXPECT_GT(cluster.serving()->replica(r).version_iteration(), 0u);
  }
  // Refreshed weights come from a converging logreg: serving accuracy on
  // separable blobs must clearly beat the 1-in-4 random baseline.
  EXPECT_GT(s.served_accuracy, 0.5);
}

// --- exp::RunSpec plumbing ---

exp::Workload blobs_workload() {
  exp::Workload w;
  w.data = blobs_data();
  w.model = "logreg";
  w.learning_rate = 0.4;
  return w;
}

TEST(ServingExperiment, RunSpecCarriesServingStats) {
  exp::RunSpec spec;
  spec.system = "dlion";
  spec.environment = "Hetero SYS A";
  spec.duration_s = 40.0;
  spec.serving = quiet_serving();
  const exp::RunResult res = exp::run_experiment(spec, blobs_workload());
  ASSERT_TRUE(res.serving.has_value());
  const serve::ServingStats& s = *res.serving;
  EXPECT_GT(s.requests_arrived, 0u);
  EXPECT_EQ(s.requests_arrived, s.requests_admitted + s.requests_rejected);
  EXPECT_EQ(s.requests_served, s.requests_admitted - s.deadline_drops);
  EXPECT_LE(s.latency_p50_s, s.latency_p99_s);
  EXPECT_EQ(s.per_replica_served.size(), 2u);
}

TEST(ServingExperiment, ServingOffLeavesResultDisengaged) {
  exp::RunSpec spec;
  spec.system = "dlion";
  spec.environment = "Homo A";
  spec.duration_s = 20.0;
  const exp::RunResult res = exp::run_experiment(spec, blobs_workload());
  EXPECT_FALSE(res.serving.has_value());
}

TEST(ServingExperiment, StatsIdenticalWithAndWithoutObserver) {
  exp::RunSpec spec;
  spec.system = "dlion";
  spec.environment = "Homo A";
  spec.duration_s = 30.0;
  spec.serving = quiet_serving();
  spec.serving->publish_period_s = 10.0;

  const exp::RunResult off = exp::run_experiment(spec, blobs_workload());
  obs::Observability o;
  spec.obs = &o;
  const exp::RunResult on = exp::run_experiment(spec, blobs_workload());

  ASSERT_TRUE(off.serving.has_value());
  ASSERT_TRUE(on.serving.has_value());
  EXPECT_EQ(off.serving->requests_served, on.serving->requests_served);
  EXPECT_EQ(off.serving->deadline_drops, on.serving->deadline_drops);
  EXPECT_EQ(off.serving->batches, on.serving->batches);
  EXPECT_EQ(off.serving->batch_size_counts, on.serving->batch_size_counts);
  EXPECT_EQ(off.serving->refreshes_adopted, on.serving->refreshes_adopted);
  EXPECT_EQ(off.serving->latency_p50_s, on.serving->latency_p50_s);
  EXPECT_EQ(off.serving->latency_p99_s, on.serving->latency_p99_s);
  EXPECT_EQ(off.serving->served_accuracy, on.serving->served_accuracy);
}

TEST(ServingExperiment, StatsInvariantToThreadPoolSize) {
  exp::RunSpec spec;
  spec.system = "dlion";
  spec.environment = "Homo A";
  spec.duration_s = 30.0;
  spec.serving = quiet_serving();
  spec.serving->publish_period_s = 10.0;

  common::ThreadPool::reset_global_for_testing(1);
  const exp::RunResult serial = exp::run_experiment(spec, blobs_workload());
  common::ThreadPool::reset_global_for_testing(4);
  const exp::RunResult pooled = exp::run_experiment(spec, blobs_workload());
  common::ThreadPool::reset_global_for_testing(0);

  ASSERT_TRUE(serial.serving.has_value());
  ASSERT_TRUE(pooled.serving.has_value());
  EXPECT_EQ(serial.serving->requests_served, pooled.serving->requests_served);
  EXPECT_EQ(serial.serving->batches, pooled.serving->batches);
  EXPECT_EQ(serial.serving->latency_p50_s, pooled.serving->latency_p50_s);
  EXPECT_EQ(serial.serving->latency_p99_s, pooled.serving->latency_p99_s);
  EXPECT_EQ(serial.serving->served_accuracy, pooled.serving->served_accuracy);
  EXPECT_EQ(serial.final_accuracy, pooled.final_accuracy);
}

}  // namespace
}  // namespace dlion::serve

// Tests for the extension systems (DGC-style compression, Prague-style
// partial all-reduce) and their registry entries.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "nn/model_zoo.h"
#include "systems/dgc.h"
#include "systems/prague.h"
#include "systems/registry.h"

namespace dlion::systems {
namespace {

nn::BuiltModel model_with_gradients(std::uint64_t seed, float fill) {
  common::Rng rng(seed);
  nn::BuiltModel bm = nn::make_mlp(rng, 8, 8, 4);
  for (nn::Variable* v : bm.model.variables()) v->grad().fill(fill);
  return bm;
}

core::LinkContext ctx_for(std::size_t self, std::size_t peer,
                          std::uint64_t iteration, std::size_t n = 4) {
  core::LinkContext ctx;
  ctx.self = self;
  ctx.peer = peer;
  ctx.iteration = iteration;
  ctx.available_mbps = 100.0;
  ctx.iterations_per_sec = 1.0;
  ctx.byte_scale = 1.0;
  ctx.learning_rate = 0.1;
  ctx.n_workers = n;
  return ctx;
}

std::size_t total_entries(const std::vector<comm::VariableGrad>& vars) {
  std::size_t n = 0;
  for (const auto& v : vars) n += v.num_entries();
  return n;
}

TEST(Dgc, SelectsDensityFraction) {
  nn::BuiltModel bm = model_with_gradients(1, 0.0f);
  common::Rng grad_rng(2);
  for (nn::Variable* v : bm.model.variables()) {
    for (auto& g : v->grad().span()) {
      g = static_cast<float>(grad_rng.normal());
    }
  }
  DgcStrategy s(0.1);
  const auto out = s.generate(bm.model, ctx_for(0, 1, 0));
  // ~10% per variable, rounded down but at least one entry each.
  EXPECT_LE(total_entries(out), bm.model.num_params() / 5);
  EXPECT_GE(total_entries(out), bm.model.num_variables());
}

TEST(Dgc, ResidualCarriesUnsentMass) {
  nn::BuiltModel bm = model_with_gradients(3, 1.0f);
  DgcStrategy s(0.01);
  // After k iterations of constant gradient 1, the entries that finally get
  // sent carry the accumulated value k (error feedback: nothing is lost).
  (void)s.generate(bm.model, ctx_for(0, 1, 0));
  (void)s.generate(bm.model, ctx_for(0, 1, 1));
  const auto out = s.generate(bm.model, ctx_for(0, 1, 2));
  bool found = false;
  for (const auto& vg : out) {
    for (float v : vg.values) {
      // Entries sent before carry less; never-sent entries carry 3.
      EXPECT_GE(v, 1.0f - 1e-5);
      EXPECT_LE(v, 3.0f + 1e-5);
      if (v > 2.5f) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Dgc, InvalidDensityThrows) {
  EXPECT_THROW(DgcStrategy(0.0), std::invalid_argument);
  EXPECT_THROW(DgcStrategy(1.5), std::invalid_argument);
}

TEST(Prague, GroupSizePeersGetDenseOthersNothing) {
  nn::BuiltModel bm = model_with_gradients(4, 1.0f);
  PragueStrategy s(2, 7);
  std::size_t dense_links = 0, empty_links = 0;
  for (std::size_t peer = 1; peer < 6; ++peer) {
    const auto out = s.generate(bm.model, ctx_for(0, peer, 0, 6));
    if (total_entries(out) == bm.model.num_params()) {
      ++dense_links;
    } else if (total_entries(out) == 0) {
      ++empty_links;
    } else {
      FAIL() << "partial update from Prague";
    }
  }
  EXPECT_EQ(dense_links, 2u);
  EXPECT_EQ(empty_links, 3u);
}

TEST(Prague, GroupChangesAcrossIterations) {
  nn::BuiltModel bm = model_with_gradients(5, 1.0f);
  PragueStrategy s(2, 11);
  std::set<std::vector<std::size_t>> groups;
  for (std::uint64_t it = 0; it < 20; ++it) {
    (void)s.generate(bm.model, ctx_for(0, 1, it, 6));
    groups.insert(s.current_group());
  }
  EXPECT_GT(groups.size(), 1u);  // randomized groups
}

TEST(Prague, GroupNeverContainsSelf) {
  nn::BuiltModel bm = model_with_gradients(6, 1.0f);
  PragueStrategy s(3, 13);
  for (std::uint64_t it = 0; it < 10; ++it) {
    (void)s.generate(bm.model, ctx_for(2, 0, it, 6));
    for (std::size_t member : s.current_group()) {
      EXPECT_NE(member, 2u);
      EXPECT_LT(member, 6u);
    }
  }
}

TEST(Prague, InvalidGroupSizeThrows) {
  EXPECT_THROW(PragueStrategy(0, 1), std::invalid_argument);
}

TEST(Registry, ExtensionSystemsConstruct) {
  for (const std::string name : {"dgc", "prague"}) {
    const SystemSpec spec = make_system(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_NE(spec.strategy_factory(0), nullptr);
    core::WorkerOptions options;
    spec.configure(options);
    EXPECT_EQ(options.dkt.mode, core::DktMode::kNone);
  }
}

}  // namespace
}  // namespace dlion::systems

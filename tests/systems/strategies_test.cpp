#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "nn/model_zoo.h"
#include "systems/ako.h"
#include "systems/baseline.h"
#include "systems/gaia.h"
#include "systems/hop.h"
#include "systems/registry.h"

namespace dlion::systems {
namespace {

nn::BuiltModel model_with_gradients(std::uint64_t seed, float scale = 1.0f) {
  common::Rng rng(seed);
  nn::BuiltModel bm = nn::make_mlp(rng, 8, 8, 4);
  common::Rng grad_rng(seed + 100);
  for (nn::Variable* v : bm.model.variables()) {
    for (auto& g : v->grad().span()) {
      g = scale * static_cast<float>(grad_rng.normal());
    }
  }
  return bm;
}

core::LinkContext ctx_for(std::size_t peer, std::uint64_t iteration) {
  core::LinkContext ctx;
  ctx.self = 0;
  ctx.peer = peer;
  ctx.iteration = iteration;
  ctx.available_mbps = 100.0;
  ctx.iterations_per_sec = 1.0;
  ctx.byte_scale = 1.0;
  ctx.learning_rate = 0.1;
  ctx.n_workers = 4;
  return ctx;
}

std::size_t total_entries(const std::vector<comm::VariableGrad>& vars) {
  std::size_t n = 0;
  for (const auto& v : vars) n += v.num_entries();
  return n;
}

TEST(Baseline, SendsWholeGradientsDense) {
  nn::BuiltModel bm = model_with_gradients(1);
  BaselineStrategy s;
  const auto out = s.generate(bm.model, ctx_for(1, 0));
  EXPECT_EQ(total_entries(out), bm.model.num_params());
  for (const auto& vg : out) EXPECT_TRUE(vg.is_dense());
}

TEST(Hop, GradientSideIsBaseline) {
  nn::BuiltModel bm = model_with_gradients(2);
  HopStrategy s;
  EXPECT_STREQ(s.name(), "hop");
  const auto out = s.generate(bm.model, ctx_for(1, 0));
  EXPECT_EQ(total_entries(out), bm.model.num_params());
  const core::SyncPolicy policy = hop_sync_policy();
  EXPECT_EQ(policy.staleness_bound, 5u);
  EXPECT_EQ(policy.backup_workers, 1u);
}

TEST(Gaia, LargeGradientsPassSmallOnesAccumulate) {
  nn::BuiltModel bm = model_with_gradients(3, /*scale=*/100.0f);
  GaiaStrategy s(1.0);
  const auto big = s.generate(bm.model, ctx_for(1, 0));
  EXPECT_GT(total_entries(big), bm.model.num_params() / 2);

  nn::BuiltModel tiny = model_with_gradients(3, /*scale=*/1e-8f);
  GaiaStrategy s2(1.0);
  const auto small = s2.generate(tiny.model, ctx_for(1, 0));
  EXPECT_EQ(total_entries(small), 0u);
}

TEST(Gaia, AccumulationEventuallySends) {
  // Gradients too small to pass on one iteration must accumulate and cross
  // the significance threshold after enough iterations - no update is ever
  // dropped, only delayed.
  nn::BuiltModel bm = model_with_gradients(4, 0.0f);
  // Constant gradient of 0.001 on every entry; weights ~O(1), S=1% needs
  // an accumulated update of ~0.01/(eta/n scale 0.025) = 0.4 -> many iters.
  for (nn::Variable* v : bm.model.variables()) v->grad().fill(0.001f);
  GaiaStrategy s(1.0);
  std::size_t sent_total = 0;
  for (std::uint64_t it = 0; it < 2000 && sent_total == 0; ++it) {
    sent_total += total_entries(s.generate(bm.model, ctx_for(1, it)));
  }
  EXPECT_GT(sent_total, 0u);
}

TEST(Gaia, SentMassMatchesAccumulatedGradients) {
  // Conservation: what Gaia sends for an entry equals the sum of the raw
  // gradients accumulated since that entry was last sent.
  nn::BuiltModel bm = model_with_gradients(5, 0.0f);
  for (nn::Variable* v : bm.model.variables()) v->grad().fill(0.5f);
  GaiaStrategy s(1.0);
  // 0.5 per iteration accumulates; first send should carry k*0.5 exactly.
  std::vector<comm::VariableGrad> out;
  std::uint64_t iters = 0;
  for (std::uint64_t it = 0; it < 100; ++it) {
    out = s.generate(bm.model, ctx_for(1, it));
    ++iters;
    if (total_entries(out) > 0) break;
  }
  ASSERT_GT(total_entries(out), 0u);
  for (const auto& vg : out) {
    for (float v : vg.values) {
      EXPECT_NEAR(v, 0.5f * static_cast<float>(iters), 1e-4);
    }
  }
}

TEST(Gaia, PerPeerStateIsIndependent) {
  nn::BuiltModel bm = model_with_gradients(6, 100.0f);
  GaiaStrategy s(1.0);
  const auto to_peer1 = s.generate(bm.model, ctx_for(1, 0));
  const auto to_peer2 = s.generate(bm.model, ctx_for(2, 0));
  // Both peers get the same significant entries: sending to peer 1 must not
  // consume peer 2's accumulator.
  EXPECT_EQ(total_entries(to_peer1), total_entries(to_peer2));
}

TEST(Ako, RoundRobinCoversAllIndices) {
  nn::BuiltModel bm = model_with_gradients(7);
  AkoStrategy s(/*partitions=*/4);
  std::map<std::uint32_t, std::set<std::uint32_t>> seen;  // var -> indices
  for (std::uint64_t it = 0; it < 4; ++it) {
    for (nn::Variable* v : bm.model.variables()) v->grad().fill(1.0f);
    const auto out = s.generate(bm.model, ctx_for(1, it));
    for (const auto& vg : out) {
      for (std::uint32_t i : vg.indices) seen[vg.var_index].insert(i);
    }
  }
  const auto& vars = bm.model.variables();
  for (std::size_t v = 0; v < vars.size(); ++v) {
    EXPECT_EQ(seen[static_cast<std::uint32_t>(v)].size(), vars[v]->size())
        << "variable " << v << " not fully covered in p iterations";
  }
}

TEST(Ako, BlocksAreDisjointAcrossIterationsOfOneCycle) {
  nn::BuiltModel bm = model_with_gradients(8);
  AkoStrategy s(4);
  std::set<std::uint32_t> first, second;
  const auto out0 = s.generate(bm.model, ctx_for(1, 0));
  for (const auto& vg : out0) {
    if (vg.var_index == 0) first.insert(vg.indices.begin(), vg.indices.end());
  }
  const auto out1 = s.generate(bm.model, ctx_for(1, 1));
  for (const auto& vg : out1) {
    if (vg.var_index == 0) second.insert(vg.indices.begin(),
                                         vg.indices.end());
  }
  for (std::uint32_t i : first) EXPECT_FALSE(second.count(i));
}

TEST(Ako, AccumulatedHistoryIsCarried) {
  nn::BuiltModel bm = model_with_gradients(9, 0.0f);
  AkoStrategy s(2);
  // Iteration 0 sends block 0 with one iteration of gradient; iteration 1
  // sends block 1 carrying TWO iterations of accumulated gradient.
  for (nn::Variable* v : bm.model.variables()) v->grad().fill(1.0f);
  (void)s.generate(bm.model, ctx_for(1, 0));
  for (nn::Variable* v : bm.model.variables()) v->grad().fill(1.0f);
  const auto out = s.generate(bm.model, ctx_for(1, 1));
  bool checked = false;
  for (const auto& vg : out) {
    for (float v : vg.values) {
      EXPECT_FLOAT_EQ(v, 2.0f);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Ako, AutoPartitionCountDerivedFromLink) {
  nn::BuiltModel bm = model_with_gradients(10);
  AkoStrategy s;  // auto p
  core::LinkContext slow = ctx_for(1, 0);
  slow.available_mbps = 0.0001;
  (void)s.generate(bm.model, slow);
  const std::size_t p_slow = s.partitions_for(1);
  AkoStrategy s2;
  core::LinkContext fast = ctx_for(1, 0);
  fast.available_mbps = 10000.0;
  (void)s2.generate(bm.model, fast);
  const std::size_t p_fast = s2.partitions_for(1);
  EXPECT_GT(p_slow, p_fast);
  EXPECT_GE(p_fast, 1u);
  EXPECT_LE(p_slow, 64u);
}

TEST(Registry, AllSystemsConstruct) {
  for (const std::string name :
       {"dlion", "baseline", "hop", "gaia", "ako", "maxn", "dlion-no-wu",
        "dlion-no-dbwu"}) {
    const SystemSpec spec = make_system(name);
    EXPECT_EQ(spec.name, name);
    ASSERT_TRUE(spec.strategy_factory);
    ASSERT_TRUE(spec.configure);
    EXPECT_NE(spec.strategy_factory(0), nullptr);
  }
}

TEST(Registry, UnknownSystemThrows) {
  EXPECT_THROW(make_system("sparknet"), std::invalid_argument);
}

TEST(Registry, ComparisonSystemsMatchPaperOrder) {
  const auto systems = comparison_systems();
  ASSERT_EQ(systems.size(), 5u);
  EXPECT_EQ(systems.front(), "baseline");
  EXPECT_EQ(systems.back(), "dlion");
}

TEST(Registry, PaperEvaluationSettings) {
  core::WorkerOptions options;
  make_system("dlion").configure(options);
  EXPECT_TRUE(options.dynamic_batching);
  EXPECT_TRUE(options.weighted_update);
  EXPECT_EQ(options.dkt.mode, core::DktMode::kBest2All);
  EXPECT_DOUBLE_EQ(options.dkt.lambda, 0.75);

  core::WorkerOptions hop_opts;
  make_system("hop").configure(hop_opts);
  EXPECT_EQ(hop_opts.sync.staleness_bound, 5u);
  EXPECT_EQ(hop_opts.sync.backup_workers, 1u);

  core::WorkerOptions ako_opts;
  make_system("ako").configure(ako_opts);
  EXPECT_TRUE(ako_opts.sync.async);
}

}  // namespace
}  // namespace dlion::systems

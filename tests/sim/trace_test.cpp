#include "sim/trace.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dlion::sim {
namespace {

TEST(Trace, EmptyTraceReturnsNan) {
  const Trace t("empty");
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(std::isnan(t.last()));
  EXPECT_TRUE(std::isnan(t.max()));
  EXPECT_TRUE(std::isnan(t.value_at(1.0)));
}

TEST(Trace, LastAndMax) {
  Trace t("acc");
  t.record(1.0, 0.2);
  t.record(2.0, 0.9);
  t.record(3.0, 0.5);
  EXPECT_DOUBLE_EQ(t.last(), 0.5);
  EXPECT_DOUBLE_EQ(t.max(), 0.9);
}

TEST(Trace, ValueAtStepFunction) {
  Trace t("acc");
  t.record(1.0, 0.1);
  t.record(5.0, 0.5);
  EXPECT_TRUE(std::isnan(t.value_at(0.5)));
  EXPECT_DOUBLE_EQ(t.value_at(1.0), 0.1);
  EXPECT_DOUBLE_EQ(t.value_at(4.0), 0.1);
  EXPECT_DOUBLE_EQ(t.value_at(100.0), 0.5);
}

TEST(Trace, TimeToReach) {
  Trace t("acc");
  t.record(1.0, 0.3);
  t.record(2.0, 0.6);
  t.record(3.0, 0.8);
  EXPECT_DOUBLE_EQ(t.time_to_reach(0.5), 2.0);
  EXPECT_DOUBLE_EQ(t.time_to_reach(0.8), 3.0);
  EXPECT_TRUE(std::isinf(t.time_to_reach(0.9)));
}

TEST(Trace, NamePreserved) {
  const Trace t("loss");
  EXPECT_EQ(t.name(), "loss");
}

}  // namespace
}  // namespace dlion::sim

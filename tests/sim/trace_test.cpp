#include "sim/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace dlion::sim {
namespace {

TEST(Trace, EmptyTraceReturnsNan) {
  const Trace t("empty");
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(std::isnan(t.last()));
  EXPECT_TRUE(std::isnan(t.max()));
  EXPECT_TRUE(std::isnan(t.value_at(1.0)));
}

TEST(Trace, LastAndMax) {
  Trace t("acc");
  t.record(1.0, 0.2);
  t.record(2.0, 0.9);
  t.record(3.0, 0.5);
  EXPECT_DOUBLE_EQ(t.last(), 0.5);
  EXPECT_DOUBLE_EQ(t.max(), 0.9);
}

TEST(Trace, ValueAtStepFunction) {
  Trace t("acc");
  t.record(1.0, 0.1);
  t.record(5.0, 0.5);
  EXPECT_TRUE(std::isnan(t.value_at(0.5)));
  EXPECT_DOUBLE_EQ(t.value_at(1.0), 0.1);
  EXPECT_DOUBLE_EQ(t.value_at(4.0), 0.1);
  EXPECT_DOUBLE_EQ(t.value_at(100.0), 0.5);
}

TEST(Trace, TimeToReach) {
  Trace t("acc");
  t.record(1.0, 0.3);
  t.record(2.0, 0.6);
  t.record(3.0, 0.8);
  EXPECT_DOUBLE_EQ(t.time_to_reach(0.5), 2.0);
  EXPECT_DOUBLE_EQ(t.time_to_reach(0.8), 3.0);
  EXPECT_TRUE(std::isinf(t.time_to_reach(0.9)));
}

TEST(Trace, NamePreserved) {
  const Trace t("loss");
  EXPECT_EQ(t.name(), "loss");
}

// --- Edge cases for the binary-searched lookups (value_at/time_to_reach
// --- run on a sorted time axis; these pin the boundary semantics).

TEST(Trace, EmptyTimeToReachIsInf) {
  const Trace t("empty");
  EXPECT_TRUE(std::isinf(t.time_to_reach(0.0)));
  EXPECT_TRUE(std::isinf(t.time_to_reach(-1.0)));
}

TEST(Trace, ValueAtBeforeFirstSampleIsNan) {
  Trace t("acc");
  t.record(10.0, 0.4);
  EXPECT_TRUE(std::isnan(t.value_at(9.999999)));
  EXPECT_TRUE(std::isnan(t.value_at(-5.0)));
  EXPECT_DOUBLE_EQ(t.value_at(10.0), 0.4);  // exact hit on the first point
}

TEST(Trace, ValueAtExactHitReturnsThatSample) {
  Trace t("acc");
  t.record(1.0, 0.1);
  t.record(2.0, 0.2);
  t.record(3.0, 0.3);
  EXPECT_DOUBLE_EQ(t.value_at(2.0), 0.2);
  EXPECT_DOUBLE_EQ(t.value_at(3.0), 0.3);  // exact hit on the last point
}

TEST(Trace, ValueAtDuplicateTimesReturnsLastDuplicate) {
  Trace t("acc");
  t.record(1.0, 0.1);
  t.record(2.0, 0.2);
  t.record(2.0, 0.25);  // same timestamp, later record wins
  t.record(3.0, 0.3);
  EXPECT_DOUBLE_EQ(t.value_at(2.0), 0.25);
  EXPECT_DOUBLE_EQ(t.value_at(2.5), 0.25);
}

TEST(Trace, TimeToReachExactThresholdHit) {
  Trace t("acc");
  t.record(1.0, 0.5);
  t.record(2.0, 0.7);
  EXPECT_DOUBLE_EQ(t.time_to_reach(0.7), 2.0);   // >= is inclusive
  EXPECT_DOUBLE_EQ(t.time_to_reach(0.5), 1.0);
  EXPECT_DOUBLE_EQ(t.time_to_reach(-1.0), 1.0);  // trivially reached
}

TEST(Trace, TimeToReachIgnoresNanSamples) {
  Trace t("acc");
  t.record(1.0, std::nan(""));
  t.record(2.0, 0.4);
  t.record(3.0, std::nan(""));
  t.record(4.0, 0.9);
  EXPECT_DOUBLE_EQ(t.time_to_reach(0.3), 2.0);
  EXPECT_DOUBLE_EQ(t.time_to_reach(0.8), 4.0);
  EXPECT_TRUE(std::isinf(t.time_to_reach(0.95)));
}

TEST(Trace, TimeToReachNonMonotoneValuesFindsFirstCrossing) {
  Trace t("acc");
  t.record(1.0, 0.2);
  t.record(2.0, 0.8);  // spike
  t.record(3.0, 0.5);  // dip below threshold again
  t.record(4.0, 0.9);
  EXPECT_DOUBLE_EQ(t.time_to_reach(0.7), 2.0) << "first crossing, not last";
}

TEST(Trace, BinarySearchMatchesLinearReference) {
  // Deterministic pseudo-random trace; compare the O(log n) lookups
  // against brute-force linear references at many query points.
  Trace t("ref");
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  double time = 0.0;
  for (int i = 0; i < 400; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    time += static_cast<double>(x % 1000ull) / 250.0;  // non-decreasing
    const double value = static_cast<double>(x % 10007ull) / 10007.0;
    t.record(time, (x % 17ull == 0) ? std::nan("") : value);
  }
  const auto& pts = t.points();
  auto linear_value_at = [&](double q) {
    double v = std::nan("");
    for (const auto& p : pts) {
      if (p.time <= q) v = p.value;
    }
    return v;
  };
  auto linear_time_to_reach = [&](double thr) {
    for (const auto& p : pts) {
      if (p.value >= thr) return p.time;
    }
    return std::numeric_limits<double>::infinity();
  };
  for (int i = -5; i < 410; ++i) {
    const double q = static_cast<double>(i) * 1.7;
    const double expect = linear_value_at(q);
    const double got = t.value_at(q);
    if (std::isnan(expect)) {
      EXPECT_TRUE(std::isnan(got)) << "q=" << q;
    } else {
      EXPECT_DOUBLE_EQ(got, expect) << "q=" << q;
    }
  }
  for (int i = 0; i <= 20; ++i) {
    const double thr = static_cast<double>(i) / 20.0;
    EXPECT_DOUBLE_EQ(t.time_to_reach(thr), linear_time_to_reach(thr))
        << "thr=" << thr;
  }
}

}  // namespace
}  // namespace dlion::sim

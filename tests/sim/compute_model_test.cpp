#include "sim/compute_model.h"

#include <gtest/gtest.h>

namespace dlion::sim {
namespace {

nn::ModelProfile test_profile() {
  nn::ModelProfile p;
  p.name = "test";
  p.nominal_bytes = 1000;
  p.nominal_flops_per_sample = 1e6;
  return p;
}

TEST(ComputeResource, NominalTimeFormula) {
  ComputeSpec spec;
  spec.units = Schedule(4.0);
  spec.flops_per_unit = 1e6;
  spec.iteration_overhead_s = 0.5;
  ComputeResource res(spec, test_profile(), 1);
  // 0.5 + 8 * 1e6 / (4 * 1e6) = 0.5 + 2 = 2.5
  EXPECT_DOUBLE_EQ(res.nominal_iteration_seconds(8, 0.0), 2.5);
}

TEST(ComputeResource, TimeScalesInverselyWithUnits) {
  ComputeSpec spec;
  spec.units = Schedule{{0.0, 2.0}, {100.0, 8.0}};
  spec.flops_per_unit = 1e6;
  spec.iteration_overhead_s = 0.0;
  ComputeResource res(spec, test_profile(), 1);
  const double before = res.nominal_iteration_seconds(16, 50.0);
  const double after = res.nominal_iteration_seconds(16, 150.0);
  EXPECT_DOUBLE_EQ(before, 4.0 * after);
  EXPECT_DOUBLE_EQ(res.units_at(150.0), 8.0);
}

TEST(ComputeResource, TimeGrowsLinearlyWithBatch) {
  ComputeSpec spec;
  spec.units = Schedule(1.0);
  spec.flops_per_unit = 1e6;
  spec.iteration_overhead_s = 1.0;
  ComputeResource res(spec, test_profile(), 1);
  const double t8 = res.nominal_iteration_seconds(8, 0.0);
  const double t16 = res.nominal_iteration_seconds(16, 0.0);
  // Linear in LBS: t16 - overhead == 2 * (t8 - overhead).
  EXPECT_DOUBLE_EQ(t16 - 1.0, 2.0 * (t8 - 1.0));
}

TEST(ComputeResource, JitterStaysBounded) {
  ComputeSpec spec;
  spec.units = Schedule(1.0);
  spec.flops_per_unit = 1e6;
  spec.iteration_overhead_s = 0.0;
  spec.jitter_frac = 0.1;
  ComputeResource res(spec, test_profile(), 42);
  const double nominal = res.nominal_iteration_seconds(10, 0.0);
  for (int i = 0; i < 100; ++i) {
    const double t = res.iteration_seconds(10, 0.0);
    EXPECT_GE(t, nominal * 0.9 - 1e-12);
    EXPECT_LE(t, nominal * 1.1 + 1e-12);
  }
}

TEST(ComputeResource, NoJitterIsDeterministic) {
  ComputeSpec spec;
  spec.units = Schedule(1.0);
  spec.flops_per_unit = 1e6;
  ComputeResource res(spec, test_profile(), 1);
  EXPECT_DOUBLE_EQ(res.iteration_seconds(10, 0.0),
                   res.nominal_iteration_seconds(10, 0.0));
}

TEST(ComputeResource, InvalidRatesThrow) {
  ComputeSpec spec;
  spec.flops_per_unit = 0.0;
  EXPECT_THROW(ComputeResource(spec, test_profile(), 1),
               std::invalid_argument);
  nn::ModelProfile bad = test_profile();
  bad.nominal_flops_per_sample = 0.0;
  ComputeSpec ok;
  ok.flops_per_unit = 1e6;
  EXPECT_THROW(ComputeResource(ok, bad, 1), std::invalid_argument);
}

}  // namespace
}  // namespace dlion::sim

#include "sim/resource_schedule.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dlion::sim {
namespace {

TEST(Schedule, ConstantValue) {
  const Schedule s(42.0);
  EXPECT_DOUBLE_EQ(s.at(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.at(1e9), 42.0);
  EXPECT_TRUE(s.is_constant());
  EXPECT_TRUE(std::isinf(s.next_change_after(0.0)));
}

TEST(Schedule, PiecewiseLookup) {
  const Schedule s{{0.0, 10.0}, {100.0, 20.0}, {200.0, 5.0}};
  EXPECT_DOUBLE_EQ(s.at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.at(99.9), 10.0);
  EXPECT_DOUBLE_EQ(s.at(100.0), 20.0);
  EXPECT_DOUBLE_EQ(s.at(150.0), 20.0);
  EXPECT_DOUBLE_EQ(s.at(200.0), 5.0);
  EXPECT_DOUBLE_EQ(s.at(1e6), 5.0);
}

TEST(Schedule, NextChangeAfter) {
  const Schedule s{{0.0, 1.0}, {10.0, 2.0}, {20.0, 3.0}};
  EXPECT_DOUBLE_EQ(s.next_change_after(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.next_change_after(10.0), 20.0);
  EXPECT_TRUE(std::isinf(s.next_change_after(20.0)));
}

TEST(Schedule, MustStartAtZero) {
  EXPECT_THROW(Schedule({{1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(Schedule(std::vector<std::pair<double, double>>{}),
               std::invalid_argument);
}

TEST(Schedule, BreakpointsMustAscend) {
  EXPECT_THROW(Schedule({{0.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}}),
               std::invalid_argument);
  EXPECT_THROW(Schedule({{0.0, 1.0}, {5.0, 2.0}, {3.0, 3.0}}),
               std::invalid_argument);
}

TEST(Schedule, ShiftedMovesBreakpoints) {
  const Schedule s{{0.0, 1.0}, {10.0, 2.0}};
  const Schedule shifted = s.shifted(5.0);
  EXPECT_DOUBLE_EQ(shifted.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(shifted.at(14.9), 1.0);
  EXPECT_DOUBLE_EQ(shifted.at(15.0), 2.0);
}

TEST(ConcatPhases, SequencesSchedules) {
  const Schedule phase1(10.0);
  const Schedule phase2(20.0);
  const Schedule phase3(5.0);
  const Schedule s = concat_phases({{phase1, 100.0},
                                    {phase2, 100.0},
                                    {phase3, 100.0}});
  EXPECT_DOUBLE_EQ(s.at(50.0), 10.0);
  EXPECT_DOUBLE_EQ(s.at(150.0), 20.0);
  EXPECT_DOUBLE_EQ(s.at(250.0), 5.0);
  EXPECT_DOUBLE_EQ(s.at(1000.0), 5.0);  // last phase holds
}

TEST(ConcatPhases, InnerBreakpointsRespectDuration) {
  const Schedule dynamic{{0.0, 1.0}, {50.0, 2.0}, {150.0, 3.0}};
  // Only the first 100 s of `dynamic` plays, so the 150 s point is cut.
  const Schedule s = concat_phases({{dynamic, 100.0}, {Schedule(9.0), 100.0}});
  EXPECT_DOUBLE_EQ(s.at(25.0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(75.0), 2.0);
  EXPECT_DOUBLE_EQ(s.at(125.0), 9.0);
}

TEST(ConcatPhases, EmptyThrows) {
  EXPECT_THROW(concat_phases({}), std::invalid_argument);
}

}  // namespace
}  // namespace dlion::sim

#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace dlion::sim {
namespace {

TEST(FaultSchedule, EmptyByDefault) {
  FaultSchedule s;
  EXPECT_TRUE(s.empty());
  s.crash(0, 1.0, 2.0);
  EXPECT_FALSE(s.empty());
}

TEST(FaultSchedule, BuildersValidateWindows) {
  FaultSchedule s;
  EXPECT_THROW(s.crash(0, 5.0, 5.0), std::invalid_argument);   // empty window
  EXPECT_THROW(s.crash(0, 5.0, 4.0), std::invalid_argument);   // inverted
  EXPECT_THROW(s.crash(0, -1.0, 4.0), std::invalid_argument);  // negative
  EXPECT_THROW(s.blackout(1, 1, 0.0, 1.0), std::invalid_argument);  // self
  EXPECT_THROW(s.lossy(0, 1, 1.5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(s.lossy(0, 1, -0.1, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(s.partition({0, 1}, {1, 2}, 0.0, 1.0), std::invalid_argument);
  EXPECT_TRUE(s.empty()) << "failed builders must not leave partial state";
}

TEST(FaultInjector, CrashWindowIsHalfOpen) {
  FaultSchedule s;
  s.crash(2, 10.0, 20.0);
  FaultInjector inj(s);
  EXPECT_FALSE(inj.worker_down(2, 9.999));
  EXPECT_TRUE(inj.worker_down(2, 10.0));   // inclusive start
  EXPECT_TRUE(inj.worker_down(2, 19.999));
  EXPECT_FALSE(inj.worker_down(2, 20.0));  // exclusive end
  EXPECT_FALSE(inj.worker_down(1, 15.0));  // other workers unaffected
}

TEST(FaultInjector, BlackoutIsDirected) {
  FaultSchedule s;
  s.blackout(0, 1, 5.0, 6.0);
  FaultInjector inj(s);
  EXPECT_TRUE(inj.link_blacked_out(0, 1, 5.5));
  EXPECT_FALSE(inj.link_blacked_out(1, 0, 5.5));  // reverse direction open
  EXPECT_FALSE(inj.link_usable(0, 1, 5.5));
  EXPECT_TRUE(inj.link_usable(1, 0, 5.5));
}

TEST(FaultInjector, PartitionBlacksOutEveryCrossLinkBothWays) {
  FaultSchedule s;
  s.partition({0, 1, 2}, {3, 4, 5}, 10.0, 20.0);
  FaultInjector inj(s);
  for (std::size_t a : {0u, 1u, 2u}) {
    for (std::size_t b : {3u, 4u, 5u}) {
      EXPECT_FALSE(inj.link_usable(a, b, 15.0)) << a << "->" << b;
      EXPECT_FALSE(inj.link_usable(b, a, 15.0)) << b << "->" << a;
      EXPECT_TRUE(inj.link_usable(a, b, 25.0));  // window over
    }
  }
  // Intra-group links stay up during the partition.
  EXPECT_TRUE(inj.link_usable(0, 2, 15.0));
  EXPECT_TRUE(inj.link_usable(3, 5, 15.0));
}

TEST(FaultInjector, CrashedEndpointMakesLinkUnusable) {
  FaultSchedule s;
  s.crash(1, 0.0, 10.0);
  FaultInjector inj(s);
  EXPECT_FALSE(inj.link_usable(0, 1, 5.0));  // receiver down
  EXPECT_FALSE(inj.link_usable(1, 0, 5.0));  // sender down
  EXPECT_TRUE(inj.link_usable(0, 2, 5.0));
}

TEST(FaultInjector, LossRulesComposeAsComplementProduct) {
  FaultSchedule s;
  s.lossy(0, 1, 0.5, 0.0, 10.0);
  s.lossy(0, 1, 0.5, 0.0, 10.0);
  FaultInjector inj(s);
  // P(survive) = 0.5 * 0.5 -> P(drop) = 0.75.
  EXPECT_DOUBLE_EQ(inj.loss_probability(0, 1, 5.0), 0.75);
  EXPECT_DOUBLE_EQ(inj.loss_probability(0, 1, 15.0), 0.0);  // outside window
  EXPECT_DOUBLE_EQ(inj.loss_probability(1, 0, 5.0), 0.0);   // directed
}

TEST(FaultInjector, CertainLossDropsEverything) {
  FaultSchedule s;
  s.lossy(0, 1, 1.0, 0.0, 10.0);
  FaultInjector inj(s);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(inj.should_drop(0, 1, 1.0));
  EXPECT_EQ(inj.loss_drops(), 50u);
}

TEST(FaultInjector, DropDrawsAreSeedDeterministic) {
  FaultSchedule s;
  s.lossy(0, 1, 0.5, 0.0, 100.0);
  FaultInjector a(s);
  FaultInjector b(s);
  std::vector<bool> draws_a, draws_b;
  for (int i = 0; i < 200; ++i) {
    draws_a.push_back(a.should_drop(0, 1, 1.0));
    draws_b.push_back(b.should_drop(0, 1, 1.0));
  }
  EXPECT_EQ(draws_a, draws_b);
  EXPECT_EQ(a.loss_drops(), b.loss_drops());
  EXPECT_GT(a.loss_drops(), 0u);   // p=0.5 over 200 draws
  EXPECT_LT(a.loss_drops(), 200u);
}

TEST(FaultInjector, InactiveLossRuleConsumesNoRandomness) {
  // Drop decisions outside any loss window must not advance the RNG, so a
  // blackout-only schedule can never perturb the loss-draw stream.
  FaultSchedule s;
  s.lossy(0, 1, 0.5, 50.0, 60.0);
  FaultInjector a(s);
  FaultInjector b(s);
  // `a` performs many out-of-window queries first; `b` does not.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(a.should_drop(0, 1, 1.0));   // before the window
    EXPECT_FALSE(a.should_drop(2, 3, 55.0));  // different link
  }
  std::vector<bool> draws_a, draws_b;
  for (int i = 0; i < 50; ++i) {
    draws_a.push_back(a.should_drop(0, 1, 55.0));
    draws_b.push_back(b.should_drop(0, 1, 55.0));
  }
  EXPECT_EQ(draws_a, draws_b);
}

}  // namespace
}  // namespace dlion::sim

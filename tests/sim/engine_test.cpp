#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace dlion::sim {
namespace {

TEST(Engine, ClockAdvancesWithEvents) {
  Engine e;
  double seen = -1;
  e.at(2.0, [&] { seen = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 2.0);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(Engine, AfterSchedulesRelative) {
  Engine e;
  std::vector<double> times;
  e.at(1.0, [&] {
    times.push_back(e.now());
    e.after(0.5, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  int count = 0;
  e.at(1.0, [&] { ++count; });
  e.at(5.0, [&] { ++count; });
  e.run_until(2.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  EXPECT_EQ(e.events_pending(), 1u);
  e.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Engine, EventAtBoundaryRuns) {
  Engine e;
  bool ran = false;
  e.at(2.0, [&] { ran = true; });
  e.run_until(2.0);
  EXPECT_TRUE(ran);
}

TEST(Engine, PastSchedulingThrows) {
  Engine e;
  e.at(5.0, [] {});
  e.run();
  EXPECT_THROW(e.at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(e.after(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, CancelPending) {
  Engine e;
  bool ran = false;
  const EventId id = e.at(1.0, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_executed(), 5u);
}

TEST(Engine, ZeroDelayEventsRunInOrder) {
  Engine e;
  std::vector<int> order;
  e.at(1.0, [&] {
    order.push_back(0);
    e.after(0.0, [&] { order.push_back(2); });
    order.push_back(1);
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace dlion::sim

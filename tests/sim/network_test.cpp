#include "sim/network.h"

#include <gtest/gtest.h>

#include <vector>

namespace dlion::sim {
namespace {

TEST(Network, TransferTimeMatchesBandwidth) {
  Engine e;
  Network net(e, 2);  // one peer: the egress share is the full egress
  net.set_egress(0, Schedule(8.0));  // 8 Mbps = 1 MB/s
  net.set_latency(0, 1, 0.0);
  double delivered_at = -1;
  net.send(0, 1, 1'000'000, [&] { delivered_at = e.now(); });
  e.run();
  EXPECT_NEAR(delivered_at, 1.0, 1e-9);
}

TEST(Network, LatencyAddsAfterTransmission) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(8.0));
  net.set_latency(0, 1, 0.5);
  double delivered_at = -1;
  net.send(0, 1, 1'000'000, [&] { delivered_at = e.now(); });
  e.run();
  EXPECT_NEAR(delivered_at, 1.5, 1e-9);
}

TEST(Network, ParallelLinksShareEgressFairly) {
  Engine e;
  Network net(e, 3);  // two peers: each link gets egress/2
  net.set_egress(0, Schedule(8.0));
  net.set_all_latency(0.0);
  std::vector<std::pair<int, double>> deliveries;
  net.send(0, 1, 1'000'000, [&] { deliveries.push_back({1, e.now()}); });
  net.send(0, 2, 1'000'000, [&] { deliveries.push_back({2, e.now()}); });
  e.run();
  ASSERT_EQ(deliveries.size(), 2u);
  // Both transfers run in parallel at 4 Mbps = 0.5 MB/s -> 2 s each.
  EXPECT_NEAR(deliveries[0].second, 2.0, 1e-9);
  EXPECT_NEAR(deliveries[1].second, 2.0, 1e-9);
}

TEST(Network, SameLinkTransfersSerializeFifo) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(8.0));
  net.set_all_latency(0.0);
  std::vector<double> deliveries;
  net.send(0, 1, 1'000'000, [&] { deliveries.push_back(e.now()); });
  net.send(0, 1, 1'000'000, [&] { deliveries.push_back(e.now()); });
  e.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NEAR(deliveries[0], 1.0, 1e-9);
  EXPECT_NEAR(deliveries[1], 2.0, 1e-9);  // waited for the first
}

TEST(Network, LinkMatrixLimitsRate) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(1000.0));
  net.set_link(0, 1, Schedule(8.0));  // slow WAN path
  net.set_all_latency(0.0);
  double delivered_at = -1;
  net.send(0, 1, 1'000'000, [&] { delivered_at = e.now(); });
  e.run();
  EXPECT_NEAR(delivered_at, 1.0, 1e-9);
}

TEST(Network, AvailableMbpsIsMinOfEgressShareAndLink) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(50.0));
  net.set_link(0, 1, Schedule(30.0));
  EXPECT_DOUBLE_EQ(net.available_mbps(0, 1), 30.0);
  EXPECT_DOUBLE_EQ(net.egress_mbps(0), 50.0);
  EXPECT_DOUBLE_EQ(net.link_mbps(0, 1), 30.0);
  // With more peers, the egress share divides by n-1.
  Network net3(e, 3);
  net3.set_egress(0, Schedule(50.0));
  EXPECT_DOUBLE_EQ(net3.available_mbps(0, 1), 25.0);
}

TEST(Network, BandwidthScheduleChangesOverTime) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule{{0.0, 8.0}, {10.0, 80.0}});
  net.set_all_latency(0.0);
  std::vector<double> deliveries;
  // First transfer starts at t=0 at 8 Mbps -> 1 s.
  net.send(0, 1, 1'000'000, [&] { deliveries.push_back(e.now()); });
  // Second transfer scheduled after the schedule change: starts at 10 s at
  // 80 Mbps -> 0.1 s.
  e.at(10.0, [&] {
    net.send(0, 1, 1'000'000, [&] { deliveries.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NEAR(deliveries[0], 1.0, 1e-9);
  EXPECT_NEAR(deliveries[1], 10.1, 1e-9);
}

TEST(Network, SelfSendDeliversImmediately) {
  Engine e;
  Network net(e, 2);
  bool delivered = false;
  net.send(0, 0, 1'000'000'000, [&] { delivered = true; });
  e.run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

TEST(Network, BacklogTracksQueuedBytes) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(8.0));
  net.send(0, 1, 500'000, [] {});
  net.send(0, 1, 300'000, [] {});
  EXPECT_EQ(net.backlog_bytes(0), 800'000u);
  e.run();
  EXPECT_EQ(net.backlog_bytes(0), 0u);
}

TEST(Network, StatsCountBytesAndMessages) {
  Engine e;
  Network net(e, 3);
  net.send(0, 1, 100, [] {});
  net.send(0, 2, 200, [] {});
  net.send(1, 2, 300, [] {});
  e.run();
  EXPECT_EQ(net.stats(0).bytes_sent, 300u);
  EXPECT_EQ(net.stats(0).messages_sent, 2u);
  EXPECT_EQ(net.total_stats().bytes_sent, 600u);
  EXPECT_EQ(net.total_stats().messages_sent, 3u);
}

TEST(Network, OutOfRangeThrows) {
  Engine e;
  Network net(e, 2);
  EXPECT_THROW(net.send(0, 5, 1, [] {}), std::out_of_range);
}

// --- Delivery semantics -------------------------------------------------

TEST(Network, LatencyDoesNotOccupyTheLink) {
  // Propagation delay is added after transmission without holding the link:
  // back-to-back transfers serialize on transmission time only, so their
  // latencies overlap instead of adding up.
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(8.0));   // 1 MB/s -> 1 s per message
  net.set_latency(0, 1, 10.0);
  std::vector<double> deliveries;
  net.send(0, 1, 1'000'000, [&] { deliveries.push_back(e.now()); });
  net.send(0, 1, 1'000'000, [&] { deliveries.push_back(e.now()); });
  e.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NEAR(deliveries[0], 11.0, 1e-9);  // 1 s tx + 10 s latency
  EXPECT_NEAR(deliveries[1], 12.0, 1e-9);  // NOT 22 s
}

TEST(Network, FifoOrderPreservedWithHeterogeneousSizes) {
  // A small message enqueued behind a large one on the same link must not
  // overtake it, even though it would transmit faster on an idle link.
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(8.0));
  net.set_all_latency(0.0);
  std::vector<int> order;
  net.send(0, 1, 1'000'000, [&] { order.push_back(1); });
  net.send(0, 1, 1'000, [&] { order.push_back(2); });
  e.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Network, BacklogReturnsToZeroAfterDrainAndRefill) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(8.0));
  net.send(0, 1, 500'000, [] {});
  e.run();
  EXPECT_EQ(net.backlog_bytes(0), 0u);
  // A second wave after full drain accounts from zero again.
  net.send(0, 1, 250'000, [] {});
  EXPECT_EQ(net.backlog_bytes(0), 250'000u);
  e.run();
  EXPECT_EQ(net.backlog_bytes(0), 0u);
}

// --- Fault injection ----------------------------------------------------

TEST(Network, BlackoutDropsAtEnqueueWithoutDelivering) {
  Engine e;
  Network net(e, 2);
  FaultSchedule s;
  s.blackout(0, 1, 0.0, 10.0);
  FaultInjector inj(s);
  net.set_fault_injector(&inj);
  bool delivered = false;
  net.send(0, 1, 1'000, [&] { delivered = true; });
  e.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.stats(0).messages_dropped, 1u);
  EXPECT_EQ(net.stats(0).bytes_dropped, 1'000u);
  EXPECT_EQ(net.total_stats().messages_dropped, 1u);
  EXPECT_EQ(net.backlog_bytes(0), 0u);  // dropped messages never queue
}

TEST(Network, MessageInFlightWhenBlackoutStartsIsDropped) {
  // The link goes dark mid-transmission: the transfer completes its send
  // side but the delivery is suppressed (the payload died on the wire).
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(8.0));  // 1 MB -> 1 s transmission
  net.set_all_latency(0.0);
  FaultSchedule s;
  s.blackout(0, 1, 0.5, 10.0);  // starts while the message is in flight
  FaultInjector inj(s);
  net.set_fault_injector(&inj);
  bool delivered = false;
  net.send(0, 1, 1'000'000, [&] { delivered = true; });
  e.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.total_stats().messages_dropped, 1u);
  EXPECT_EQ(net.backlog_bytes(0), 0u);  // link freed despite the drop
}

TEST(Network, BlackoutDoesNotWedgeSubsequentTraffic) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(8.0));
  net.set_all_latency(0.0);
  FaultSchedule s;
  s.blackout(0, 1, 0.0, 5.0);
  FaultInjector inj(s);
  net.set_fault_injector(&inj);
  std::vector<double> deliveries;
  net.send(0, 1, 1'000'000, [&] { deliveries.push_back(e.now()); });  // dropped
  e.at(6.0, [&] {
    net.send(0, 1, 1'000'000, [&] { deliveries.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_NEAR(deliveries[0], 7.0, 1e-9);  // post-blackout traffic flows
}

TEST(Network, CrashedWorkerDropsInboundOutboundAndSelfSends) {
  Engine e;
  Network net(e, 3);
  FaultSchedule s;
  s.crash(1, 0.0, 10.0);
  FaultInjector inj(s);
  net.set_fault_injector(&inj);
  int delivered = 0;
  net.send(0, 1, 100, [&] { ++delivered; });  // inbound to crashed
  net.send(1, 2, 100, [&] { ++delivered; });  // outbound from crashed
  net.send(1, 1, 100, [&] { ++delivered; });  // self-send on crashed
  net.send(0, 2, 100, [&] { ++delivered; });  // healthy link unaffected
  e.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.total_stats().messages_dropped, 3u);
}

TEST(Network, LossyLinkDropsAreDeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e;
    Network net(e, 2);
    net.set_all_latency(0.0);
    FaultSchedule s;
    s.lossy(0, 1, 0.5, 0.0, 1000.0);
    FaultInjector inj(s);
    net.set_fault_injector(&inj);
    std::vector<int> delivered;
    for (int i = 0; i < 100; ++i) {
      net.send(0, 1, 1'000, [&delivered, i] { delivered.push_back(i); });
    }
    e.run();
    return delivered;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 0u);
  EXPECT_LT(a.size(), 100u);  // p=0.5 drops some, not all
}

TEST(Network, NoInjectorMeansNoDropAccounting) {
  Engine e;
  Network net(e, 2);
  bool delivered = false;
  net.send(0, 1, 100, [&] { delivered = true; });
  e.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.total_stats().messages_dropped, 0u);
  EXPECT_EQ(net.total_stats().bytes_dropped, 0u);
}

}  // namespace
}  // namespace dlion::sim

#include "sim/network.h"

#include <gtest/gtest.h>

#include <vector>

namespace dlion::sim {
namespace {

TEST(Network, TransferTimeMatchesBandwidth) {
  Engine e;
  Network net(e, 2);  // one peer: the egress share is the full egress
  net.set_egress(0, Schedule(8.0));  // 8 Mbps = 1 MB/s
  net.set_latency(0, 1, 0.0);
  double delivered_at = -1;
  net.send(0, 1, 1'000'000, [&] { delivered_at = e.now(); });
  e.run();
  EXPECT_NEAR(delivered_at, 1.0, 1e-9);
}

TEST(Network, LatencyAddsAfterTransmission) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(8.0));
  net.set_latency(0, 1, 0.5);
  double delivered_at = -1;
  net.send(0, 1, 1'000'000, [&] { delivered_at = e.now(); });
  e.run();
  EXPECT_NEAR(delivered_at, 1.5, 1e-9);
}

TEST(Network, ParallelLinksShareEgressFairly) {
  Engine e;
  Network net(e, 3);  // two peers: each link gets egress/2
  net.set_egress(0, Schedule(8.0));
  net.set_all_latency(0.0);
  std::vector<std::pair<int, double>> deliveries;
  net.send(0, 1, 1'000'000, [&] { deliveries.push_back({1, e.now()}); });
  net.send(0, 2, 1'000'000, [&] { deliveries.push_back({2, e.now()}); });
  e.run();
  ASSERT_EQ(deliveries.size(), 2u);
  // Both transfers run in parallel at 4 Mbps = 0.5 MB/s -> 2 s each.
  EXPECT_NEAR(deliveries[0].second, 2.0, 1e-9);
  EXPECT_NEAR(deliveries[1].second, 2.0, 1e-9);
}

TEST(Network, SameLinkTransfersSerializeFifo) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(8.0));
  net.set_all_latency(0.0);
  std::vector<double> deliveries;
  net.send(0, 1, 1'000'000, [&] { deliveries.push_back(e.now()); });
  net.send(0, 1, 1'000'000, [&] { deliveries.push_back(e.now()); });
  e.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NEAR(deliveries[0], 1.0, 1e-9);
  EXPECT_NEAR(deliveries[1], 2.0, 1e-9);  // waited for the first
}

TEST(Network, LinkMatrixLimitsRate) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(1000.0));
  net.set_link(0, 1, Schedule(8.0));  // slow WAN path
  net.set_all_latency(0.0);
  double delivered_at = -1;
  net.send(0, 1, 1'000'000, [&] { delivered_at = e.now(); });
  e.run();
  EXPECT_NEAR(delivered_at, 1.0, 1e-9);
}

TEST(Network, AvailableMbpsIsMinOfEgressShareAndLink) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(50.0));
  net.set_link(0, 1, Schedule(30.0));
  EXPECT_DOUBLE_EQ(net.available_mbps(0, 1), 30.0);
  EXPECT_DOUBLE_EQ(net.egress_mbps(0), 50.0);
  EXPECT_DOUBLE_EQ(net.link_mbps(0, 1), 30.0);
  // With more peers, the egress share divides by n-1.
  Network net3(e, 3);
  net3.set_egress(0, Schedule(50.0));
  EXPECT_DOUBLE_EQ(net3.available_mbps(0, 1), 25.0);
}

TEST(Network, BandwidthScheduleChangesOverTime) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule{{0.0, 8.0}, {10.0, 80.0}});
  net.set_all_latency(0.0);
  std::vector<double> deliveries;
  // First transfer starts at t=0 at 8 Mbps -> 1 s.
  net.send(0, 1, 1'000'000, [&] { deliveries.push_back(e.now()); });
  // Second transfer scheduled after the schedule change: starts at 10 s at
  // 80 Mbps -> 0.1 s.
  e.at(10.0, [&] {
    net.send(0, 1, 1'000'000, [&] { deliveries.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NEAR(deliveries[0], 1.0, 1e-9);
  EXPECT_NEAR(deliveries[1], 10.1, 1e-9);
}

TEST(Network, SelfSendDeliversImmediately) {
  Engine e;
  Network net(e, 2);
  bool delivered = false;
  net.send(0, 0, 1'000'000'000, [&] { delivered = true; });
  e.run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

TEST(Network, BacklogTracksQueuedBytes) {
  Engine e;
  Network net(e, 2);
  net.set_egress(0, Schedule(8.0));
  net.send(0, 1, 500'000, [] {});
  net.send(0, 1, 300'000, [] {});
  EXPECT_EQ(net.backlog_bytes(0), 800'000u);
  e.run();
  EXPECT_EQ(net.backlog_bytes(0), 0u);
}

TEST(Network, StatsCountBytesAndMessages) {
  Engine e;
  Network net(e, 3);
  net.send(0, 1, 100, [] {});
  net.send(0, 2, 200, [] {});
  net.send(1, 2, 300, [] {});
  e.run();
  EXPECT_EQ(net.stats(0).bytes_sent, 300u);
  EXPECT_EQ(net.stats(0).messages_sent, 2u);
  EXPECT_EQ(net.total_stats().bytes_sent, 600u);
  EXPECT_EQ(net.total_stats().messages_sent, 3u);
}

TEST(Network, OutOfRangeThrows) {
  Engine e;
  Network net(e, 2);
  EXPECT_THROW(net.send(0, 5, 1, [] {}), std::out_of_range);
}

}  // namespace
}  // namespace dlion::sim

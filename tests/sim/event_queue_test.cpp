#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace dlion::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(0); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(1.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, SizeAndEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, NextTime) {
  EventQueue q;
  q.push(5.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelAfterPopIsNoop) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  (void)q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  const EventId id = q.push(2.0, [&] { order.push_back(2); });
  q.push(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, PoppedCarriesTime) {
  EventQueue q;
  q.push(4.5, [] {});
  EXPECT_DOUBLE_EQ(q.pop().time, 4.5);
}

}  // namespace
}  // namespace dlion::sim

// Scale-mode observability determinism (ISSUE 9 acceptance): the *sampled*
// streamed trace must be byte-identical across thread-pool sizes — every
// sampling decision keys off track names and flow sequence numbers, never
// entropy or wall clocks — and attaching the streaming sink + sampler +
// window-only retention must not perturb training by a single bit.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "common/thread_pool.h"
#include "core/cluster.h"
#include "data/synthetic.h"
#include "exp/environments.h"
#include "obs/obs.h"
#include "obs/trace_sink.h"
#include "systems/registry.h"

namespace dlion {
namespace {

data::TrainTest blobs_data() {
  return data::make_blobs(11, 16, 4, 1024, 256);
}

core::ClusterSpec tiny_spec(std::size_t n_workers, double duration) {
  const systems::SystemSpec system = systems::make_system("dlion");
  core::ClusterSpec spec;
  spec.model = "logreg";
  spec.seed = 7;
  spec.duration_s = duration;
  for (std::size_t i = 0; i < n_workers; ++i) {
    spec.compute.push_back(exp::cpu_cores(4));
  }
  spec.strategy_factory = system.strategy_factory;
  core::WorkerOptions options;
  options.learning_rate = 0.4;
  options.eval_period_iters = 10;
  options.gbs.initial_gbs = 16 * n_workers;
  options.fixed_lbs = 16;
  options.dkt.period_iters = 25;
  system.configure(options);
  spec.worker_options = options;
  return spec;
}

obs::TraceSampleConfig scale_sampling(double duration) {
  obs::TraceSampleConfig cfg;
  cfg.track_stride = 2;
  cfg.head_events_per_track = 4;
  cfg.flow_stride = 2;
  cfg.full_t0 = 0.4 * duration;
  cfg.full_t1 = 0.6 * duration;
  return cfg;
}

struct ScaleRun {
  std::string sampled_trace;   // streamed Chrome JSON
  std::uint64_t admitted = 0;
  std::uint64_t sampled_out = 0;
  std::size_t retained_bytes = 0;
  std::string metrics_json;
  std::uint64_t iterations = 0;
  common::Bytes bytes = 0;
  double final_accuracy = 0.0;
};

ScaleRun run_sampled(double duration = 60.0) {
  const data::TrainTest data = blobs_data();
  core::ClusterSpec spec = tiny_spec(4, duration);
  auto o = std::make_unique<obs::Observability>();
  std::ostringstream stream;
  obs::ChromeStreamSink sink(stream);
  o->tracer().set_sink(&sink);
  o->tracer().set_sampling(scale_sampling(duration));
  o->tracer().set_retain_all(false);
  spec.obs = o.get();
  core::Cluster cluster(spec, data.train, data.test);
  cluster.run();
  o->tracer().finish();
  ScaleRun out;
  out.sampled_trace = stream.str();
  out.admitted = o->tracer().admitted_events();
  out.sampled_out = o->tracer().sampled_out_events();
  out.retained_bytes = o->tracer().retained_bytes();
  out.metrics_json = o->metrics().to_json();
  out.iterations = cluster.total_iterations();
  out.bytes = cluster.total_bytes_sent();
  out.final_accuracy = cluster.mean_accuracy();
  return out;
}

TEST(ObsScaleDeterminism, SampledTraceIsByteIdenticalAcrossThreadCounts) {
  // The positive admitted/sampled_out assertions need spans to exist.
  if (!DLION_OBS_ENABLED)
    GTEST_SKIP() << "observability compiled out (DLION_OBS=OFF)";
  common::ThreadPool::reset_global_for_testing(1);
  const ScaleRun single = run_sampled();

  common::ThreadPool::reset_global_for_testing(4);
  const ScaleRun pooled = run_sampled();

  common::ThreadPool::reset_global_for_testing(0);  // restore default

  EXPECT_EQ(single.sampled_trace, pooled.sampled_trace);
  EXPECT_EQ(single.admitted, pooled.admitted);
  EXPECT_EQ(single.sampled_out, pooled.sampled_out);
  EXPECT_EQ(single.retained_bytes, pooled.retained_bytes);
  EXPECT_EQ(single.metrics_json, pooled.metrics_json);
  EXPECT_EQ(single.iterations, pooled.iterations);
  EXPECT_EQ(single.final_accuracy, pooled.final_accuracy);
  // Sampling actually engaged (the comparison is about a *sampled* trace).
  EXPECT_GT(single.sampled_out, 0u);
  EXPECT_GT(single.admitted, 0u);
}

TEST(ObsScaleDeterminism, StreamingSinkDoesNotPerturbTraining) {
  const data::TrainTest data = blobs_data();

  core::ClusterSpec bare_spec = tiny_spec(4, 60.0);
  core::Cluster bare(bare_spec, data.train, data.test);
  bare.run();

  const ScaleRun instrumented = run_sampled();

  EXPECT_EQ(bare.total_iterations(), instrumented.iterations);
  EXPECT_EQ(bare.total_bytes_sent(), instrumented.bytes);
  EXPECT_EQ(bare.mean_accuracy(), instrumented.final_accuracy);
}

TEST(ObsScaleDeterminism, RetentionIsBoundedByTheWindow) {
  // Same run, full retention vs window-only retention: the windowed run
  // must stream the same admitted events while retaining far less.
  if (!DLION_OBS_ENABLED)
    GTEST_SKIP() << "observability compiled out (DLION_OBS=OFF)";
  const data::TrainTest data = blobs_data();
  auto run = [&data](bool retain_all) {
    core::ClusterSpec spec = tiny_spec(4, 60.0);
    auto o = std::make_unique<obs::Observability>();
    o->tracer().set_sampling(scale_sampling(60.0));
    o->tracer().set_retain_all(retain_all);
    spec.obs = o.get();
    core::Cluster cluster(spec, data.train, data.test);
    cluster.run();
    return std::pair<std::uint64_t, std::size_t>(
        o->tracer().admitted_events(), o->tracer().retained_bytes());
  };
  const auto [full_admitted, full_bytes] = run(true);
  const auto [win_admitted, win_bytes] = run(false);
  EXPECT_EQ(full_admitted, win_admitted);
  EXPECT_GT(win_bytes, 0u);
  EXPECT_LT(win_bytes, full_bytes / 2);  // window is 20% of the run
}

}  // namespace
}  // namespace dlion

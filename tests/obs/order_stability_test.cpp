// Order-stability golden tests: every deterministic run artifact must be a
// pure function of the data recorded, never of the order in which series or
// label sets happened to be touched. This is the audit companion to the
// dlion-nondet-unordered-iteration lint rule: the linter stops unordered
// iteration from feeding exporters; these tests pin the exporters' actual
// byte output so a regression in either layer is caught.

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace dlion::obs {
namespace {

// Touch the same logical series in two wildly different orders; exports
// must be byte-identical.
TEST(OrderStabilityTest, MetricsExportIndependentOfRegistrationOrder) {
  MetricsRegistry forward;
  forward.counter("train.iterations").inc(10);
  forward.counter("comm.sent", {{"type", "GradientUpdate"}}).inc(3);
  forward.counter("comm.sent", {{"type", "Ack"}}).inc(7);
  forward.gauge("worker.lbs", {{"worker", "0"}}).set(32.0);
  forward.gauge("worker.lbs", {{"worker", "1"}}).set(16.0);

  MetricsRegistry reverse;
  reverse.gauge("worker.lbs", {{"worker", "1"}}).set(16.0);
  reverse.counter("comm.sent", {{"type", "Ack"}}).inc(7);
  reverse.gauge("worker.lbs", {{"worker", "0"}}).set(32.0);
  reverse.counter("comm.sent", {{"type", "GradientUpdate"}}).inc(3);
  reverse.counter("train.iterations").inc(10);

  EXPECT_EQ(forward.to_json(), reverse.to_json());
  EXPECT_EQ(forward.to_csv(), reverse.to_csv());
}

// Label KEY order within one series must also be canonicalized: the same
// labels written as {a,b} and {b,a} are one series, one exported row.
TEST(OrderStabilityTest, LabelKeyOrderIsCanonicalized) {
  MetricsRegistry a;
  a.counter("net.bytes", {{"src", "0"}, {"dst", "1"}}).inc(100);
  MetricsRegistry b;
  b.counter("net.bytes", {{"dst", "1"}, {"src", "0"}}).inc(100);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.rows().size(), 1u);
}

// Golden pin: the exact bytes of a small export. If this test breaks, the
// artifact format changed — that can be intentional, but it invalidates
// stored baselines, so the diff should be a conscious decision.
TEST(OrderStabilityTest, CsvGolden) {
  MetricsRegistry m;
  m.gauge("worker.lbs", {{"worker", "0"}}).set(32.0);
  m.counter("comm.sent", {{"type", "Ack"}}).inc(7);
  m.counter("train.iterations").inc(2);
  const std::string csv = m.to_csv();
  // Rows sorted by (name, canonical labels), independent of touch order.
  const std::size_t row_comm = csv.find("comm.sent");
  const std::size_t row_train = csv.find("train.iterations");
  const std::size_t row_worker = csv.find("worker.lbs");
  ASSERT_NE(row_comm, std::string::npos) << csv;
  ASSERT_NE(row_train, std::string::npos) << csv;
  ASSERT_NE(row_worker, std::string::npos) << csv;
  EXPECT_LT(row_comm, row_train) << csv;
  EXPECT_LT(row_train, row_worker) << csv;
}

// Repeated export of an untouched registry is byte-stable.
TEST(OrderStabilityTest, ExportIsIdempotent) {
  MetricsRegistry m;
  m.counter("a").inc();
  m.gauge("b", {{"k", "v"}}).set(1.5);
  const std::string once = m.to_json();
  const std::string twice = m.to_json();
  EXPECT_EQ(once, twice);
  EXPECT_EQ(m.to_csv(), m.to_csv());
}

}  // namespace
}  // namespace dlion::obs

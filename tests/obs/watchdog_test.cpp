// Watchdog detector unit tests (every detector fires on its trigger and
// stays silent without it) plus integration checks: a fault-injected run
// degrades, a clean baseline stays quiet, and the abort policy stops the
// engine at the firing event.
#include "obs/watchdog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "exp/environments.h"
#include "exp/experiment.h"
#include "obs/obs.h"

namespace dlion {
namespace {

using obs::Watchdog;
using obs::WatchdogConfig;
using obs::WatchdogEvent;

WatchdogConfig quiet_config() {
  WatchdogConfig cfg;
  cfg.no_progress_window_s = 0.0;  // each test enables exactly one detector
  cfg.loss_divergence_factor = 0.0;
  cfg.dead_letter_limit = 0;
  cfg.drop_limit = 0;
  cfg.staleness_limit = 0.0;
  return cfg;
}

TEST(Watchdog, NoProgressFiresOnGapAndOnlyOnce) {
  WatchdogConfig cfg = quiet_config();
  cfg.no_progress_window_s = 5.0;
  Watchdog wd(cfg, 2);
  wd.on_iteration(0, 1.0);
  wd.on_iteration(1, 4.0);
  EXPECT_FALSE(wd.degraded());
  wd.finalize(20.0);  // 16 s since the last iteration
  ASSERT_TRUE(wd.degraded());
  ASSERT_EQ(wd.events().size(), 1u);
  EXPECT_EQ(wd.events()[0].detector, "no_progress");
  EXPECT_EQ(wd.events()[0].worker, WatchdogEvent::kClusterWide);
  EXPECT_DOUBLE_EQ(wd.events()[0].value, 16.0);
  wd.finalize(40.0);  // latched: no second event
  EXPECT_EQ(wd.events().size(), 1u);
}

TEST(Watchdog, NoProgressSilentWhenIterationsKeepComing) {
  WatchdogConfig cfg = quiet_config();
  cfg.no_progress_window_s = 5.0;
  Watchdog wd(cfg, 1);
  for (int i = 0; i < 20; ++i) wd.on_iteration(0, i * 2.0);
  wd.finalize(40.0);
  EXPECT_FALSE(wd.degraded());
}

TEST(Watchdog, NoProgressCountsFromRunStart) {
  WatchdogConfig cfg = quiet_config();
  cfg.no_progress_window_s = 5.0;
  Watchdog wd(cfg, 1);
  wd.finalize(6.0);  // never saw a single iteration
  ASSERT_EQ(wd.events().size(), 1u);
  EXPECT_EQ(wd.events()[0].detector, "no_progress");
}

TEST(Watchdog, DivergentLossFiresOnNonFinite) {
  WatchdogConfig cfg = quiet_config();
  cfg.loss_divergence_factor = 10.0;
  Watchdog wd(cfg, 2);
  wd.on_loss(1, 3.0, std::numeric_limits<double>::quiet_NaN());
  ASSERT_EQ(wd.events().size(), 1u);
  EXPECT_EQ(wd.events()[0].detector, "divergent_loss");
  EXPECT_EQ(wd.events()[0].worker, 1u);
}

TEST(Watchdog, DivergentLossFiresAgainstFirstObservedBaseline) {
  WatchdogConfig cfg = quiet_config();
  cfg.loss_divergence_factor = 10.0;
  Watchdog wd(cfg, 2);
  wd.on_loss(0, 1.0, 0.7);   // baseline
  wd.on_loss(0, 2.0, 6.5);   // < 10x: fine
  EXPECT_FALSE(wd.degraded());
  wd.on_loss(0, 3.0, 7.5);   // > 10 * 0.7
  ASSERT_EQ(wd.events().size(), 1u);
  EXPECT_EQ(wd.events()[0].worker, 0u);
  EXPECT_DOUBLE_EQ(wd.events()[0].value, 7.5);
  // Latch is per worker: the same detector can still fire for worker 1.
  wd.on_loss(1, 4.0, 0.5);
  wd.on_loss(1, 5.0, 50.0);
  EXPECT_EQ(wd.events().size(), 2u);
}

TEST(Watchdog, StalenessBreachRespectsLimitAndZeroDisables) {
  WatchdogConfig cfg = quiet_config();
  Watchdog off(cfg, 2);
  off.on_staleness(0, 1.0, 100.0);
  EXPECT_FALSE(off.degraded());

  cfg.staleness_limit = 4.0;
  Watchdog wd(cfg, 2);
  wd.on_staleness(0, 1.0, 3.0);
  EXPECT_FALSE(wd.degraded());
  wd.on_staleness(0, 2.0, 4.0);
  ASSERT_EQ(wd.events().size(), 1u);
  EXPECT_EQ(wd.events()[0].detector, "staleness_breach");
}

TEST(Watchdog, DeadLetterSpikeNeedsTheCountInsideTheWindow) {
  WatchdogConfig cfg = quiet_config();
  cfg.dead_letter_window_s = 10.0;
  cfg.dead_letter_limit = 3;
  Watchdog wd(cfg, 1);
  wd.on_dead_letter(1.0);
  wd.on_dead_letter(20.0);  // the first has slid out of the window
  wd.on_dead_letter(25.0);
  EXPECT_FALSE(wd.degraded());
  wd.on_dead_letter(26.0);  // 3 within [16, 26]
  ASSERT_EQ(wd.events().size(), 1u);
  EXPECT_EQ(wd.events()[0].detector, "dead_letter_spike");
  EXPECT_DOUBLE_EQ(wd.events()[0].value, 3.0);
}

TEST(Watchdog, DropSpikeFiresOnBurst) {
  WatchdogConfig cfg = quiet_config();
  cfg.drop_window_s = 5.0;
  cfg.drop_limit = 4;
  Watchdog wd(cfg, 1);
  for (int i = 0; i < 3; ++i) wd.on_drop(10.0 + 0.1 * i);
  EXPECT_FALSE(wd.degraded());
  wd.on_drop(10.4);
  ASSERT_TRUE(wd.degraded());
  EXPECT_EQ(wd.events()[0].detector, "drop_spike");
}

TEST(Watchdog, AbortOnFireInvokesHookExactlyOnce) {
  WatchdogConfig cfg = quiet_config();
  cfg.loss_divergence_factor = 2.0;
  cfg.abort_on_fire = true;
  Watchdog wd(cfg, 2);
  int aborts = 0;
  wd.set_abort_hook([&aborts] { ++aborts; });
  wd.on_loss(0, 1.0, 1.0);
  wd.on_loss(0, 2.0, 5.0);  // fires
  wd.on_loss(1, 3.0, std::numeric_limits<double>::infinity());  // second event
  EXPECT_TRUE(wd.aborted());
  EXPECT_EQ(aborts, 1);
  EXPECT_EQ(wd.events().size(), 2u);
}

TEST(Watchdog, FiredEventsLandOnTheAlertsTrack) {
  WatchdogConfig cfg = quiet_config();
  cfg.staleness_limit = 1.0;
  Watchdog wd(cfg, 1);
  obs::Tracer tr;
  wd.set_tracer(&tr);
  wd.on_staleness(0, 2.5, 3.0);
  ASSERT_EQ(tr.instants().size(), 1u);
  EXPECT_EQ(tr.instants()[0].name, "staleness_breach");
  EXPECT_DOUBLE_EQ(tr.instants()[0].t, 2.5);
  EXPECT_EQ(tr.track_process(tr.instants()[0].track), "watchdog");
  EXPECT_EQ(tr.track_thread(tr.instants()[0].track), "alerts");
}

// ---------------------------------------------------- integration checks

#if DLION_OBS_ENABLED

exp::RunSpec churn_spec(double duration) {
  exp::ChurnSpec churn;
  churn.crashed_workers = 2;
  churn.crash_start_s = 10.0;
  churn.downtime_s = 15.0;
  churn.stagger_s = 5.0;
  exp::RunSpec spec;
  spec.duration_s = duration;
  spec.env_override = exp::make_churn_environment("Homo A", churn, 20.0);
  exp::Scale scale;
  spec.eval_period_iters = scale.eval_period_iters;
  spec.dkt_period_iters = scale.dkt_period_iters;
  return spec;
}

TEST(Watchdog, FlagsFaultInjectedRunAndStaysSilentOnCleanBaseline) {
  exp::Scale scale;
  scale.duration_s = 40.0;
  const exp::Workload workload = exp::make_workload("cpu", scale);

  obs::WatchdogConfig wd;
  // Sensitive thresholds so the 2-crash churn trips the dead-letter or
  // fault-drop detector within the short bench window.
  wd.dead_letter_window_s = 40.0;
  wd.dead_letter_limit = 1;
  wd.drop_window_s = 40.0;
  wd.drop_limit = 1;
  wd.no_progress_window_s = 0.0;

  exp::RunSpec faulty = churn_spec(scale.duration_s);
  faulty.watchdog = wd;
  const exp::RunResult bad = exp::run_experiment(faulty, workload);
  EXPECT_TRUE(bad.telemetry.collected);
  EXPECT_TRUE(bad.telemetry.watchdog_degraded)
      << "churn run with crashes must trip the watchdog";
  EXPECT_FALSE(bad.telemetry.watchdog_events.empty());

  exp::RunSpec clean;
  clean.duration_s = scale.duration_s;
  clean.environment = "Homo A";
  clean.eval_period_iters = scale.eval_period_iters;
  clean.dkt_period_iters = scale.dkt_period_iters;
  clean.watchdog = wd;
  const exp::RunResult good = exp::run_experiment(clean, workload);
  EXPECT_FALSE(good.telemetry.watchdog_degraded)
      << (good.telemetry.watchdog_events.empty()
              ? std::string("(no events)")
              : good.telemetry.watchdog_events.front());
  EXPECT_FALSE(good.telemetry.watchdog_aborted);
}

TEST(Watchdog, AttachingAWatchdogDoesNotPerturbTheRun) {
  exp::Scale scale;
  scale.duration_s = 30.0;
  const exp::Workload workload = exp::make_workload("cpu", scale);
  exp::RunSpec spec;
  spec.duration_s = scale.duration_s;
  spec.eval_period_iters = scale.eval_period_iters;
  spec.dkt_period_iters = scale.dkt_period_iters;

  const exp::RunResult plain = exp::run_experiment(spec, workload);
  spec.watchdog = obs::WatchdogConfig{};  // observe-only defaults
  const exp::RunResult watched = exp::run_experiment(spec, workload);
  EXPECT_EQ(plain.total_iterations, watched.total_iterations);
  EXPECT_EQ(plain.total_bytes, watched.total_bytes);
  EXPECT_DOUBLE_EQ(plain.final_accuracy, watched.final_accuracy);
}

TEST(Watchdog, AbortPolicyStopsTheRunEarly) {
  exp::Scale scale;
  scale.duration_s = 60.0;
  const exp::Workload workload = exp::make_workload("cpu", scale);

  obs::WatchdogConfig wd;
  wd.dead_letter_window_s = 60.0;
  wd.dead_letter_limit = 1;
  wd.drop_window_s = 60.0;
  wd.drop_limit = 1;
  wd.no_progress_window_s = 0.0;
  wd.abort_on_fire = true;

  exp::RunSpec spec = churn_spec(scale.duration_s);
  spec.watchdog = wd;
  const exp::RunResult aborted = exp::run_experiment(spec, workload);
  EXPECT_TRUE(aborted.telemetry.watchdog_aborted);

  exp::RunSpec full = churn_spec(scale.duration_s);
  obs::WatchdogConfig observe = wd;
  observe.abort_on_fire = false;
  full.watchdog = observe;
  const exp::RunResult completed = exp::run_experiment(full, workload);
  EXPECT_TRUE(completed.telemetry.watchdog_degraded);
  EXPECT_FALSE(completed.telemetry.watchdog_aborted);
  EXPECT_LT(aborted.total_iterations, completed.total_iterations)
      << "aborting at the first dead letter must cut the run short";
}

#endif  // DLION_OBS_ENABLED

}  // namespace
}  // namespace dlion

// Windowed metric rollups (DESIGN.md, "Observability at scale"): windowed
// series aggregate observations into fixed time windows, RollupConfig
// collapses per-worker label cardinality into per-micro-cloud groups, and
// merge_from folds shard registries into cluster rollups. Snapshot schemas
// are versioned explicitly (JSON: dlion-metrics-v2, CSV header unchanged:
// dlion-metrics-csv-v1).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/track_names.h"

#include "json_test_util.h"

namespace dlion::obs {
namespace {

using testjson::Json;
using testjson::JsonParser;

// ------------------------------------------------------------------ Windowed

TEST(Windowed, AggregatesPerWindow) {
  Windowed w(10.0);
  w.observe(1.0, 2.0);
  w.observe(9.0, 4.0);
  w.observe(12.0, 8.0);
  w.observe(35.0, 1.0);  // window 3; window 2 stays absent (sparse)
  ASSERT_EQ(w.windows().size(), 3u);
  EXPECT_EQ(w.windows()[0].window, 0u);
  EXPECT_EQ(w.windows()[0].count, 2u);
  EXPECT_DOUBLE_EQ(w.windows()[0].sum, 6.0);
  EXPECT_DOUBLE_EQ(w.windows()[0].min, 2.0);
  EXPECT_DOUBLE_EQ(w.windows()[0].max, 4.0);
  EXPECT_EQ(w.windows()[1].window, 1u);
  EXPECT_EQ(w.windows()[2].window, 3u);
  EXPECT_EQ(w.count(), 4u);
  EXPECT_DOUBLE_EQ(w.sum(), 15.0);
  EXPECT_DOUBLE_EQ(w.observed_min(), 1.0);
  EXPECT_DOUBLE_EQ(w.observed_max(), 8.0);
}

TEST(Windowed, OutOfOrderObservationsLandInTheRightWindow) {
  Windowed w(10.0);
  w.observe(25.0, 1.0);
  w.observe(5.0, 2.0);   // earlier window, after the fact
  w.observe(25.5, 3.0);  // back to the latest
  ASSERT_EQ(w.windows().size(), 2u);
  EXPECT_EQ(w.windows()[0].window, 0u);
  EXPECT_EQ(w.windows()[0].count, 1u);
  EXPECT_EQ(w.windows()[1].window, 2u);
  EXPECT_EQ(w.windows()[1].count, 2u);
}

TEST(Windowed, NegativeTimesClampToWindowZero) {
  Windowed w(10.0);
  w.observe(-5.0, 1.0);
  ASSERT_EQ(w.windows().size(), 1u);
  EXPECT_EQ(w.windows()[0].window, 0u);
}

TEST(Windowed, MergeIsWindowWise) {
  Windowed a(10.0), b(10.0);
  a.observe(1.0, 2.0);
  a.observe(15.0, 3.0);
  b.observe(2.0, 10.0);
  b.observe(25.0, 1.0);
  a.merge(b);
  ASSERT_EQ(a.windows().size(), 3u);
  EXPECT_EQ(a.windows()[0].count, 2u);
  EXPECT_DOUBLE_EQ(a.windows()[0].sum, 12.0);
  EXPECT_DOUBLE_EQ(a.windows()[0].max, 10.0);
  EXPECT_EQ(a.windows()[1].count, 1u);
  EXPECT_EQ(a.windows()[2].count, 1u);

  Windowed other(5.0);
  EXPECT_THROW(a.merge(other), std::invalid_argument);
}

TEST(Windowed, EmptyExtremaAreNaN) {
  Windowed w(1.0);
  EXPECT_TRUE(std::isnan(w.observed_min()));
  EXPECT_TRUE(std::isnan(w.observed_max()));
}

// -------------------------------------------------------------- worker rollup

TEST(Rollup, WorkerLabelsCollapseIntoMicroCloudGroups) {
  MetricsRegistry m;
  m.set_rollup({4, 0.0});  // group every 4 workers into one micro-cloud
  for (int w = 0; w < 8; ++w) {
    m.counter("worker.iterations", {{"worker", id_str(w)}}).inc();
  }
  // 8 per-worker series became 2 per-micro-cloud series.
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.counter_total("worker.iterations"), 8.0);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"mc\""), std::string::npos);
  EXPECT_EQ(json.find("\"worker\""), std::string::npos);
}

TEST(Rollup, NonWorkerLabelsPassThrough) {
  MetricsRegistry m;
  m.set_rollup({4, 0.0});
  m.counter("link.msgs", {{"link", "0000->0001"}}).inc();
  m.gauge("tier.depth", {{"tier", "serving"}}).set(1.0);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"link\""), std::string::npos);
  EXPECT_NE(json.find("\"tier\""), std::string::npos);
}

TEST(Rollup, UnconfiguredRegistryKeepsPerWorkerSeries) {
  MetricsRegistry m;
  for (int w = 0; w < 8; ++w) {
    m.counter("worker.iterations", {{"worker", id_str(w)}}).inc();
  }
  EXPECT_EQ(m.size(), 8u);
}

// ---------------------------------------------------------------- merge_from

TEST(MergeFrom, FoldsShardsIntoClusterRollups) {
  MetricsRegistry shard_a, shard_b;
  shard_a.counter("net.msgs").inc(3.0);
  shard_b.counter("net.msgs").inc(4.0);
  shard_a.gauge("queue.peak").set(5.0);
  shard_b.gauge("queue.peak").set(9.0);
  shard_a.histogram("lat").observe(0.001);
  shard_b.histogram("lat").observe(0.002);
  shard_a.windowed("rate", {}, 10.0).observe(1.0, 1.0);
  shard_b.windowed("rate", {}, 10.0).observe(2.0, 1.0);

  MetricsRegistry total;
  total.merge_from(shard_a);
  total.merge_from(shard_b);
  EXPECT_DOUBLE_EQ(total.counter_total("net.msgs"), 7.0);
  const Histogram* h = total.find_histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  const Windowed* w = total.find_windowed("rate");
  ASSERT_NE(w, nullptr);
  ASSERT_EQ(w->windows().size(), 1u);
  EXPECT_EQ(w->windows()[0].count, 2u);
  // Gauges keep the max across shards (peak semantics).
  const std::string json = total.to_json();
  EXPECT_NE(json.find("\"queue.peak\""), std::string::npos);
  EXPECT_NE(json.find("9"), std::string::npos);
}

TEST(MergeFrom, ShardWorkersRollUpThroughTheTargetConfig) {
  // Per-worker shards merged into a grouped registry land as micro-cloud
  // series: the rollup is applied by the *target's* label rewriting.
  MetricsRegistry total;
  total.set_rollup({2, 0.0});
  for (int w = 0; w < 4; ++w) {
    MetricsRegistry shard;
    shard.counter("iters", {{"worker", id_str(w)}}).inc();
    total.merge_from(shard);
  }
  EXPECT_EQ(total.size(), 2u);
  EXPECT_DOUBLE_EQ(total.counter_total("iters"), 4.0);
}

TEST(HistogramMerge, BucketWiseWithMatchingBounds) {
  Histogram a(Histogram::default_time_bounds());
  Histogram b(Histogram::default_time_bounds());
  a.observe(0.001);
  a.observe(0.5);
  b.observe(0.001);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  Histogram tiny({1.0, 2.0});
  EXPECT_THROW(a.merge(tiny), std::invalid_argument);
}

// ------------------------------------------------------------ export schemas

TEST(Schema, JsonSnapshotIsVersionedV2) {
  MetricsRegistry m;
  m.counter("c").inc();
  m.windowed("w", {}, 10.0).observe(1.0, 2.0);
  Json doc;
  ASSERT_TRUE(JsonParser(m.to_json()).parse(doc));
  const Json* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "dlion-metrics-v2");
  // The windowed series exports its windows with per-window stats.
  const Json* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  bool saw_windowed = false;
  for (const Json& metric : metrics->array) {
    const Json* type = metric.find("type");
    if (type != nullptr && type->str == "windowed") {
      saw_windowed = true;
      ASSERT_NE(metric.find("window_s"), nullptr);
      const Json* windows = metric.find("windows");
      ASSERT_NE(windows, nullptr);
      ASSERT_EQ(windows->array.size(), 1u);
      EXPECT_NE(windows->array[0].find("count"), nullptr);
    }
  }
  EXPECT_TRUE(saw_windowed);
}

TEST(Schema, CsvHeaderContractIsUnchanged) {
  MetricsRegistry m;
  m.counter("c").inc();
  m.windowed("w", {}, 10.0).observe(1.0, 2.0);
  const std::string csv = m.to_csv();
  // dlion-metrics-csv-v1: windowed rows reuse the count/sum/min/max
  // columns, so consumers of the v1 header keep parsing.
  EXPECT_EQ(csv.rfind("type,name,labels,value,count,sum,min,max,p50,p90,p99", 0),
            0u);
  EXPECT_NE(csv.find("windowed"), std::string::npos);
}

}  // namespace
}  // namespace dlion::obs

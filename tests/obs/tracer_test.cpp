#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <string>

namespace dlion::obs {
namespace {

TEST(Tracer, TrackFindOrCreate) {
  Tracer tr;
  const TrackId a = tr.track("workers", "worker 0");
  const TrackId b = tr.track("workers", "worker 1");
  const TrackId a2 = tr.track("workers", "worker 0");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(tr.track_count(), 2u);
}

TEST(Tracer, BeginEndNestLifoPerTrack) {
  Tracer tr;
  const TrackId t = tr.track("p", "t");
  tr.begin(t, "outer", 0.0);
  tr.begin(t, "inner", 1.0);
  EXPECT_EQ(tr.open_spans(), 2u);
  tr.end(t, 2.0);  // closes inner
  tr.end(t, 3.0);  // closes outer
  ASSERT_EQ(tr.spans().size(), 2u);
  EXPECT_EQ(tr.spans()[0].name, "inner");
  EXPECT_DOUBLE_EQ(tr.spans()[0].t0, 1.0);
  EXPECT_DOUBLE_EQ(tr.spans()[0].t1, 2.0);
  EXPECT_EQ(tr.spans()[1].name, "outer");
  EXPECT_DOUBLE_EQ(tr.spans()[1].t0, 0.0);
  EXPECT_DOUBLE_EQ(tr.spans()[1].t1, 3.0);
  EXPECT_EQ(tr.open_spans(), 0u);
}

TEST(Tracer, UnmatchedEndIsIgnored) {
  Tracer tr;
  const TrackId t = tr.track("p", "t");
  tr.end(t, 1.0);
  EXPECT_TRUE(tr.spans().empty());
}

TEST(Tracer, InvalidTrackIsIgnored) {
  Tracer tr;
  tr.begin(0, "x", 0.0);
  tr.complete(99, "x", 0.0, 1.0);
  tr.instant(0, "x", 0.0);
  tr.counter(7, "x", 0.0, 1.0);
  EXPECT_EQ(tr.event_count(), 0u);
}

TEST(Tracer, OpenSpansAreDroppedAtExport) {
  Tracer tr;
  const TrackId t = tr.track("p", "t");
  tr.begin(t, "never-ends", 0.0);
  tr.complete(t, "done", 0.0, 1.0);
  EXPECT_EQ(tr.open_spans(), 1u);
  const std::string json = tr.chrome_json();
  EXPECT_EQ(json.find("never-ends"), std::string::npos);
  EXPECT_NE(json.find("done"), std::string::npos);
}

TEST(Tracer, ClearResetsEventsButKeepsTracks) {
  Tracer tr;
  const TrackId t = tr.track("p", "t");
  tr.begin(t, "open", 0.0);
  tr.complete(t, "done", 0.0, 1.0);
  tr.instant(t, "i", 0.5);
  tr.counter(t, "c", 0.5, 1.0);
  tr.clear();
  EXPECT_EQ(tr.event_count(), 0u);
  EXPECT_EQ(tr.open_spans(), 0u);
  EXPECT_EQ(tr.track_count(), 1u);
  EXPECT_EQ(tr.track("p", "t"), t);
}

// Golden-file test: the exact Chrome trace-event JSON for a tiny hand-built
// trace. Any byte change here is an export-format change — update the
// golden string deliberately and re-check that Perfetto still loads it.
TEST(Tracer, ChromeJsonGolden) {
  Tracer tr;
  const TrackId w0 = tr.track("workers", "worker 0");
  const TrackId link = tr.track("network", "link 0->1");
  tr.complete(w0, "compute", 0.0, 0.5, {{"iter", 1.0}});
  tr.begin(w0, "stall", 0.5);
  tr.end(w0, 0.75);
  tr.instant(link, "drop", 0.6, {{"bytes", 64.0}});
  tr.counter(w0, "lbs", 1.0, 32.0);

  const std::string expected = std::string("{\"traceEvents\":[") +
      // Metadata: process names sorted by process, then per-track threads.
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"network\"}},\n"
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"workers\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"worker 0\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":2,\"tid\":2,"
      "\"args\":{\"name\":\"link 0->1\"}},\n"
      // Spans in recording order (ts/dur in microseconds).
      "{\"ph\":\"X\",\"name\":\"compute\",\"ts\":0.000,\"dur\":500000.000,"
      "\"pid\":1,\"tid\":1,\"args\":{\"iter\":1}},\n"
      "{\"ph\":\"X\",\"name\":\"stall\",\"ts\":500000.000,"
      "\"dur\":250000.000,\"pid\":1,\"tid\":1,\"args\":{}},\n"
      // Instants, then counter samples.
      "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"drop\",\"ts\":600000.000,"
      "\"pid\":2,\"tid\":2,\"args\":{\"bytes\":64}},\n"
      "{\"ph\":\"C\",\"name\":\"lbs\",\"ts\":1000000.000,\"pid\":1,"
      "\"tid\":1,\"args\":{\"value\":32}}"
      "\n]}";
  EXPECT_EQ(tr.chrome_json(), expected);
}

TEST(Tracer, ChromeJsonFlowEventsGolden) {
  Tracer tr;
  const TrackId w0 = tr.track("workers", "worker 0");
  const TrackId link = tr.track("network", "link 0->1");
  const TrackId w1 = tr.track("workers", "worker 1");
  // A send -> transfer -> deliver chain with a deterministic 64-bit id
  // ((src+1) << 40 | seq, here src=0 seq=3).
  const std::uint64_t id = (1ull << 40) | 3ull;
  tr.flow(w0, Tracer::FlowPhase::kStart, "GradientUpdate", 0.1, id);
  tr.flow(link, Tracer::FlowPhase::kStep, "GradientUpdate", 0.2, id);
  tr.flow(w1, Tracer::FlowPhase::kEnd, "GradientUpdate", 0.3, id);

  const std::string expected = std::string("{\"traceEvents\":[") +
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"network\"}},\n"
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"workers\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"worker 0\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":2,\"tid\":2,"
      "\"args\":{\"name\":\"link 0->1\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":3,"
      "\"args\":{\"name\":\"worker 1\"}},\n"
      // Flow points in recording order; the id renders as a hex string and
      // the finish event binds to its enclosing slice (bp:"e").
      "{\"ph\":\"s\",\"cat\":\"flow\",\"name\":\"GradientUpdate\","
      "\"id\":\"0x10000000003\",\"ts\":100000.000,\"pid\":1,\"tid\":1},\n"
      "{\"ph\":\"t\",\"cat\":\"flow\",\"name\":\"GradientUpdate\","
      "\"id\":\"0x10000000003\",\"ts\":200000.000,\"pid\":2,\"tid\":2},\n"
      "{\"ph\":\"f\",\"cat\":\"flow\",\"name\":\"GradientUpdate\","
      "\"id\":\"0x10000000003\",\"ts\":300000.000,\"pid\":1,\"tid\":3,"
      "\"bp\":\"e\"}"
      "\n]}";
  EXPECT_EQ(tr.chrome_json(), expected);
}

TEST(Tracer, JsonEscapesSpecialCharacters) {
  Tracer tr;
  const TrackId t = tr.track("p\"q", "t\\u");
  tr.instant(t, "line\nbreak", 0.0);
  const std::string json = tr.chrome_json();
  EXPECT_NE(json.find("p\\\"q"), std::string::npos);
  EXPECT_NE(json.find("t\\\\u"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
}

}  // namespace
}  // namespace dlion::obs

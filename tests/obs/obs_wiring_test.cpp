// End-to-end observability wiring tests: a tiny 2-worker cluster run with
// an observer attached must (a) produce bit-identical training results to
// the uninstrumented run, (b) mirror the legacy ad-hoc counters
// (sim::NetworkStats, comm::Fabric tallies) in the MetricsRegistry, and
// (c) export Chrome trace-event JSON that parses and follows the schema.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "data/synthetic.h"
#include "exp/environments.h"
#include "exp/experiment.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "systems/registry.h"

#include "json_test_util.h"

namespace dlion {
namespace {

data::TrainTest blobs_data() {
  return data::make_blobs(11, 16, 4, 1024, 256);
}

core::ClusterSpec tiny_spec(std::size_t n_workers, double duration) {
  const systems::SystemSpec system = systems::make_system("dlion");
  core::ClusterSpec spec;
  spec.model = "logreg";
  spec.seed = 7;
  spec.duration_s = duration;
  for (std::size_t i = 0; i < n_workers; ++i) {
    spec.compute.push_back(exp::cpu_cores(4));
  }
  spec.strategy_factory = system.strategy_factory;
  core::WorkerOptions options;
  options.learning_rate = 0.4;
  options.eval_period_iters = 10;
  options.gbs.initial_gbs = 16 * n_workers;
  options.fixed_lbs = 16;
  options.dkt.period_iters = 25;
  system.configure(options);
  spec.worker_options = options;
  return spec;
}

struct RunOut {
  sim::Trace curve{"mean"};
  std::uint64_t iterations = 0;
  common::Bytes bytes = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t dead_letters = 0;
  std::uint64_t reliable_retries = 0;
};

RunOut run_cluster(obs::Observability* o) {
  const data::TrainTest data = blobs_data();
  core::ClusterSpec spec = tiny_spec(2, 60.0);
  spec.obs = o;
  core::Cluster cluster(spec, data.train, data.test);
  cluster.run();
  RunOut out;
  out.curve = cluster.mean_accuracy_trace();
  out.iterations = cluster.total_iterations();
  out.bytes = cluster.total_bytes_sent();
  out.messages_sent = cluster.network().total_stats().messages_sent;
  out.messages_dropped = cluster.network().total_stats().messages_dropped;
  out.dead_letters = cluster.fabric().dead_letters();
  out.reliable_retries = cluster.fabric().reliable_retries();
  return out;
}

TEST(ObsWiring, AttachedObserverDoesNotPerturbTheRun) {
  const RunOut off = run_cluster(nullptr);
  obs::Observability o;
  const RunOut on = run_cluster(&o);

  EXPECT_EQ(off.iterations, on.iterations);
  EXPECT_EQ(off.bytes, on.bytes);
  EXPECT_EQ(off.messages_sent, on.messages_sent);
  const auto& pa = off.curve.points();
  const auto& pb = on.curve.points();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i].time, pb[i].time);
    EXPECT_DOUBLE_EQ(pa[i].value, pb[i].value);
  }
#if DLION_OBS_ENABLED
  EXPECT_GT(o.tracer().event_count(), 0u);
  EXPECT_GT(o.metrics().size(), 0u);
#else
  EXPECT_EQ(o.tracer().event_count(), 0u);
#endif
}

TEST(ObsWiring, DisabledObserverRecordsNothing) {
  obs::Observability o;
  o.set_enabled(false);
  const RunOut off = run_cluster(nullptr);
  const RunOut res = run_cluster(&o);
  EXPECT_EQ(off.iterations, res.iterations);
  EXPECT_EQ(o.tracer().event_count(), 0u);
  EXPECT_DOUBLE_EQ(o.metrics().counter_total("sim.events_executed"), 0.0);
}

#if DLION_OBS_ENABLED

TEST(ObsWiring, RegistryMirrorsLegacyCounters) {
  obs::Observability o;
  const RunOut res = run_cluster(&o);
  const obs::MetricsRegistry& m = o.metrics();

  EXPECT_DOUBLE_EQ(m.counter_total("sim.net.messages_sent"),
                   static_cast<double>(res.messages_sent));
  EXPECT_DOUBLE_EQ(m.counter_total("sim.net.bytes_sent"),
                   static_cast<double>(res.bytes));
  EXPECT_DOUBLE_EQ(m.counter_total("sim.net.messages_dropped"),
                   static_cast<double>(res.messages_dropped));
  EXPECT_DOUBLE_EQ(m.counter_total("comm.fabric.dead_letters"),
                   static_cast<double>(res.dead_letters));
  EXPECT_DOUBLE_EQ(m.counter_total("comm.fabric.reliable_retries"),
                   static_cast<double>(res.reliable_retries));
  EXPECT_DOUBLE_EQ(m.counter_total("core.iterations"),
                   static_cast<double>(res.iterations));
  EXPECT_GT(m.counter_total("sim.events_executed"), 0.0);
  // Message-type breakdown sums to the total sent.
  EXPECT_DOUBLE_EQ(m.counter_total("comm.fabric.sent"),
                   static_cast<double>(res.messages_sent));
}

TEST(ObsWiring, TelemetrySummaryIsPopulated) {
  obs::Observability o;
  run_cluster(&o);
  const obs::RunTelemetry t = obs::summarize(o);
  EXPECT_TRUE(t.collected);
  EXPECT_GT(t.span_count, 0u);
  EXPECT_GT(t.compute_seconds, 0.0);
  EXPECT_GT(t.net_tx_seconds, 0.0);
  EXPECT_GT(t.events_executed, 0.0);
  EXPECT_GT(t.messages_sent, 0.0);
  EXPECT_FALSE(t.phases.empty());
  // Phases sorted by total time descending.
  for (std::size_t i = 1; i < t.phases.size(); ++i) {
    EXPECT_GE(t.phases[i - 1].total_s, t.phases[i].total_s);
  }
  EXPECT_FALSE(std::isnan(t.tx_p50_s));
  EXPECT_LE(t.tx_p50_s, t.tx_p99_s);
  // to_json emits one self-contained object.
  const std::string j = t.to_json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"compute_seconds\""), std::string::npos);
}

TEST(ObsWiring, RunExperimentCollectsTelemetry) {
  exp::Scale scale;  // bench defaults
  scale.duration_s = 40.0;
  const exp::Workload workload = exp::make_workload("cpu", scale);
  exp::RunSpec spec;
  spec.system = "dlion";
  spec.environment = "Homo A";
  spec.duration_s = scale.duration_s;
  spec.eval_period_iters = scale.eval_period_iters;
  spec.dkt_period_iters = scale.dkt_period_iters;

  exp::RunResult plain = exp::run_experiment(spec, workload);
  EXPECT_FALSE(plain.telemetry.collected);

  spec.collect_telemetry = true;
  exp::RunResult inst = exp::run_experiment(spec, workload);
  EXPECT_TRUE(inst.telemetry.collected);
  EXPECT_GT(inst.telemetry.compute_seconds, 0.0);
  // Instrumentation must not change the simulation.
  EXPECT_EQ(plain.total_iterations, inst.total_iterations);
  EXPECT_EQ(plain.total_bytes, inst.total_bytes);
  EXPECT_DOUBLE_EQ(plain.final_accuracy, inst.final_accuracy);
}

// ------------------------------------------------------- JSON schema check

using testjson::Json;
using testjson::JsonParser;

TEST(ObsWiring, ChromeTraceJsonFollowsSchema) {
  obs::Observability o;
  run_cluster(&o);
  ASSERT_GT(o.tracer().event_count(), 0u);

  Json doc;
  ASSERT_TRUE(JsonParser(o.tracer().chrome_json()).parse(doc))
      << "chrome_json is not valid JSON";
  ASSERT_EQ(doc.kind, Json::kObject);
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, Json::kArray);
  ASSERT_FALSE(events->array.empty());

  std::set<std::string> phases;
  std::set<std::pair<double, double>> named_threads;
  for (const Json& e : events->array) {
    ASSERT_EQ(e.kind, Json::kObject);
    const Json* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_EQ(ph->kind, Json::kString);
    phases.insert(ph->str);

    // Every event carries pid/tid numbers and a name string.
    const Json* pid = e.find("pid");
    const Json* tid = e.find("tid");
    const Json* name = e.find("name");
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(pid->kind, Json::kNumber);
    EXPECT_EQ(tid->kind, Json::kNumber);
    EXPECT_EQ(name->kind, Json::kString);

    if (ph->str == "M") {
      ASSERT_TRUE(name->str == "process_name" || name->str == "thread_name");
      const Json* args = e.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("name"), nullptr);
      if (name->str == "thread_name") {
        named_threads.insert({pid->number, tid->number});
      }
      continue;
    }
    // Non-metadata events: ts required, on a thread that was named.
    const Json* ts = e.find("ts");
    ASSERT_NE(ts, nullptr);
    EXPECT_EQ(ts->kind, Json::kNumber);
    EXPECT_GE(ts->number, 0.0);
    EXPECT_TRUE(named_threads.count({pid->number, tid->number}))
        << "event on unnamed track pid=" << pid->number
        << " tid=" << tid->number;
    if (ph->str == "X") {
      const Json* dur = e.find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->number, 0.0);
    } else if (ph->str == "i") {
      const Json* scope = e.find("s");
      ASSERT_NE(scope, nullptr);
      EXPECT_EQ(scope->str, "t");
    } else if (ph->str == "C") {
      const Json* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_NE(args->find("value"), nullptr);
    } else if (ph->str == "s" || ph->str == "t" || ph->str == "f") {
      // Flow events: cat "flow", a non-empty hex id, and binding point
      // "e" (enclosing slice) on the terminating event.
      const Json* cat = e.find("cat");
      ASSERT_NE(cat, nullptr);
      EXPECT_EQ(cat->str, "flow");
      const Json* id = e.find("id");
      ASSERT_NE(id, nullptr);
      ASSERT_EQ(id->kind, Json::kString);
      EXPECT_FALSE(id->str.empty());
      if (ph->str == "f") {
        const Json* bp = e.find("bp");
        ASSERT_NE(bp, nullptr);
        EXPECT_EQ(bp->str, "e");
      }
    } else {
      FAIL() << "unexpected event phase '" << ph->str << "'";
    }
  }
  // A real run records metadata, spans, instants, counters, and (with
  // causal tracing on by default) flow arrows.
  EXPECT_TRUE(phases.count("M"));
  EXPECT_TRUE(phases.count("X"));
  EXPECT_TRUE(phases.count("C"));
  EXPECT_TRUE(phases.count("s"));
  EXPECT_TRUE(phases.count("t"));
  EXPECT_TRUE(phases.count("f"));

  // Metrics export parses as JSON too.
  Json metrics;
  ASSERT_TRUE(JsonParser(o.metrics().to_json()).parse(metrics));
  const Json* rows = metrics.find("metrics");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->kind, Json::kArray);
  EXPECT_FALSE(rows->array.empty());

  // Telemetry export parses as JSON.
  Json tel;
  ASSERT_TRUE(JsonParser(obs::summarize(o).to_json()).parse(tel));
  EXPECT_NE(tel.find("compute_seconds"), nullptr);
}

#endif  // DLION_OBS_ENABLED

}  // namespace
}  // namespace dlion

// Streaming trace sinks and deterministic sampling (DESIGN.md,
// "Observability at scale"): streamed events must be byte-identical to
// their batch-exported twins, the ring must bound memory, and every
// sampling decision must be a pure function of track names / flow sequence
// numbers — never entropy — so a sampled trace is reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_sink.h"
#include "obs/tracer.h"

#include "json_test_util.h"

namespace dlion::obs {
namespace {

using jsonlite::Json;
using jsonlite::JsonParser;

bool parses(const std::string& text, Json& out) {
  return JsonParser(text).parse(out);
}

// Split a {"traceEvents":[...]} file into its raw per-record byte strings,
// dropping the "ph":"M" metadata records (batch sorts those; streaming
// emits them as tracks appear).
std::vector<std::string> event_records(const std::string& trace) {
  const std::string head = "{\"traceEvents\":[";
  const std::string tail = "\n]}";
  EXPECT_EQ(trace.rfind(head, 0), 0u);
  EXPECT_EQ(trace.substr(trace.size() - tail.size()), tail);
  std::vector<std::string> out;
  std::size_t pos = head.size();
  const std::size_t end = trace.size() - tail.size();
  while (pos < end) {
    std::size_t next = trace.find(",\n", pos);
    if (next == std::string::npos || next > end) next = end;
    std::string rec = trace.substr(pos, next - pos);
    if (rec.rfind("{\"ph\":\"M\"", 0) != 0) out.push_back(std::move(rec));
    pos = next + 2;
  }
  return out;
}

// ----------------------------------------------------------- ChromeStreamSink

TEST(ChromeStreamSink, StreamedOutputMatchesBatchExport) {
  // The batch exporter groups records by type (metadata, spans, flows,
  // instants, samples) while the stream preserves recording order — but
  // every individual event record must be byte-identical between the two,
  // because both are built by obs/trace_format.h.
  Tracer batch;
  std::ostringstream stream_out;
  Tracer streamed;
  ChromeStreamSink sink(stream_out);
  streamed.set_sink(&sink);

  for (Tracer* tr : {&batch, &streamed}) {
    const TrackId w0 = tr->track("workers", "worker 0000");
    const TrackId w1 = tr->track("workers", "worker 0001");
    const TrackId net = tr->track("network", "link 0000->0001");
    tr->complete(w0, "compute", 0.0, 1.5, {{"iters", 3.0}});
    tr->begin(w1, "compute", 0.5);
    tr->end(w1, 2.0);
    tr->instant(w0, "apply", 2.25, {{"seq", 1.0}});
    tr->counter(net, "queue", 0.75, 4.0);
    tr->flow(w0, Tracer::FlowPhase::kStart, "grad", 1.5, 7);
    tr->flow(net, Tracer::FlowPhase::kStep, "grad", 1.75, 7);
    tr->flow(w1, Tracer::FlowPhase::kEnd, "grad", 2.0, 7);
  }
  streamed.finish();

  std::vector<std::string> from_stream = event_records(stream_out.str());
  std::vector<std::string> from_batch = event_records(batch.chrome_json());
  ASSERT_EQ(from_stream.size(), from_batch.size());
  std::sort(from_stream.begin(), from_stream.end());
  std::sort(from_batch.begin(), from_batch.end());
  EXPECT_EQ(from_stream, from_batch);

  EXPECT_EQ(sink.bytes_written(), stream_out.str().size());
  // events_written counts every record emitted, metadata included
  // (2 process_name + 3 thread_name here).
  EXPECT_EQ(sink.events_written(), batch.event_count() + 5u);

  Json doc;
  ASSERT_TRUE(parses(stream_out.str(), doc));
  ASSERT_NE(doc.find("traceEvents"), nullptr);
}

TEST(ChromeStreamSink, EmptyTraceIsValidJson) {
  std::ostringstream out;
  {
    Tracer tracer;
    ChromeStreamSink sink(out);
    tracer.set_sink(&sink);
    tracer.finish();
    tracer.finish();  // idempotent
  }
  Json doc;
  ASSERT_TRUE(parses(out.str(), doc));
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
}

TEST(ChromeStreamSink, ChecksumIsDeterministic) {
  auto record = [] {
    std::ostringstream out;
    ChromeStreamSink sink(out);
    Tracer tracer;
    tracer.set_sink(&sink);
    const TrackId t = tracer.track("workers", "worker 0000");
    for (int i = 0; i < 10; ++i) {
      tracer.complete(t, "step", i * 1.0, i * 1.0 + 0.5);
    }
    tracer.finish();
    return sink.checksum();
  };
  EXPECT_EQ(record(), record());
  // And it actually covers the payload: a different recording differs.
  std::ostringstream out;
  ChromeStreamSink sink(out);
  Tracer tracer;
  tracer.set_sink(&sink);
  tracer.complete(tracer.track("workers", "worker 0000"), "other", 0.0, 1.0);
  tracer.finish();
  EXPECT_NE(sink.checksum(), record());
}

TEST(ChromeStreamSink, AttachingLateReplaysKnownTracks) {
  Tracer tracer;
  const TrackId t = tracer.track("workers", "worker 0000");
  tracer.complete(t, "early", 0.0, 1.0);  // before any sink: retained only

  std::ostringstream out;
  ChromeStreamSink sink(out);
  tracer.set_sink(&sink);  // replays the track table
  tracer.complete(t, "late", 1.0, 2.0);
  tracer.finish();

  Json doc;
  ASSERT_TRUE(parses(out.str(), doc));
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_meta = false, saw_late = false, saw_early = false;
  for (const Json& e : events->array) {
    const Json* name = e.find("name");
    if (name == nullptr) continue;
    if (name->str == "thread_name") saw_meta = true;
    if (name->str == "late") saw_late = true;
    if (name->str == "early") saw_early = true;
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_late);
  EXPECT_FALSE(saw_early);  // streamed from attach time, not replayed
}

// ------------------------------------------------------------------ RingSink

TEST(RingSink, KeepsLastCapacityEventsOldestFirst) {
  RingSink ring(4);
  Tracer tracer;
  tracer.set_sink(&ring);
  const TrackId t = tracer.track("workers", "worker 0000");
  for (int i = 0; i < 10; ++i) {
    tracer.instant(t, "e" + std::to_string(i), i * 1.0);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_events(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);

  Json doc;
  ASSERT_TRUE(parses(ring.chrome_json(), doc));
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<std::string> names;
  for (const Json& e : events->array) {
    const Json* name = e.find("name");
    const Json* ph = e.find("ph");
    if (name != nullptr && ph != nullptr && ph->str == "i") {
      names.push_back(name->str);
    }
  }
  EXPECT_EQ(names, (std::vector<std::string>{"e6", "e7", "e8", "e9"}));
}

TEST(RingSink, TrackMetadataSurvivesEviction) {
  RingSink ring(2);
  Tracer tracer;
  tracer.set_sink(&ring);
  const TrackId a = tracer.track("workers", "worker 0000");
  tracer.instant(a, "x", 0.0);
  tracer.instant(a, "y", 1.0);
  tracer.instant(a, "z", 2.0);  // evicts "x"
  Json doc;
  ASSERT_TRUE(parses(ring.chrome_json(), doc));
  bool saw_thread_name = false;
  for (const Json& e : doc.find("traceEvents")->array) {
    const Json* name = e.find("name");
    if (name != nullptr && name->str == "thread_name") saw_thread_name = true;
  }
  EXPECT_TRUE(saw_thread_name);
}

TEST(TeeSink, FansOutToBothSinks) {
  std::ostringstream out;
  ChromeStreamSink stream(out);
  RingSink ring(8);
  TeeSink tee(&stream, &ring);
  Tracer tracer;
  tracer.set_sink(&tee);
  const TrackId t = tracer.track("workers", "worker 0000");
  tracer.complete(t, "step", 0.0, 1.0);
  tracer.finish();
  // 1 span + 2 metadata records (process_name, thread_name).
  EXPECT_EQ(stream.events_written(), 3u);
  EXPECT_EQ(ring.total_events(), 1u);
}

// ------------------------------------------------------------------ sampling

TEST(TraceSampling, TrackStrideKeysOffTheNumericId) {
  Tracer tracer;
  TraceSampleConfig cfg;
  cfg.track_stride = 2;
  tracer.set_sampling(cfg);
  const TrackId w0 = tracer.track("workers", "worker 0000");
  const TrackId w1 = tracer.track("workers", "worker 0001");
  const TrackId w2 = tracer.track("workers", "worker 0002");
  const TrackId ctl = tracer.track("fabric", "control");  // no digits
  tracer.complete(w0, "s", 0.0, 1.0);
  tracer.complete(w1, "s", 0.0, 1.0);
  tracer.complete(w2, "s", 0.0, 1.0);
  tracer.complete(ctl, "s", 0.0, 1.0);
  // ids 0 and 2 pass (0 % 2 == 0, 2 % 2 == 0); id 1 is sampled out;
  // the digit-free control lane is always kept.
  EXPECT_EQ(tracer.admitted_events(), 3u);
  EXPECT_EQ(tracer.sampled_out_events(), 1u);
  EXPECT_EQ(tracer.spans().size(), 3u);
}

TEST(TraceSampling, HeadBudgetKeepsTheStartOfSampledOutTracks) {
  Tracer tracer;
  TraceSampleConfig cfg;
  cfg.track_stride = 2;
  cfg.head_events_per_track = 2;
  tracer.set_sampling(cfg);
  const TrackId w1 = tracer.track("workers", "worker 0001");  // sampled out
  for (int i = 0; i < 5; ++i) tracer.instant(w1, "e", i * 1.0);
  EXPECT_EQ(tracer.admitted_events(), 2u);  // the head
  EXPECT_EQ(tracer.sampled_out_events(), 3u);
}

TEST(TraceSampling, FlowStrideKeepsChainsWhole) {
  Tracer tracer;
  TraceSampleConfig cfg;
  cfg.flow_stride = 2;
  tracer.set_sampling(cfg);
  const TrackId t = tracer.track("workers", "worker 0000");
  // Flow ids in comm layout: (src+1) << 40 | seq. The stride applies to
  // the masked seq, so chains keep or drop as a unit regardless of source.
  const std::uint64_t src_bits = std::uint64_t{3} << 40;
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    const std::uint64_t id = src_bits | seq;
    tracer.flow(t, Tracer::FlowPhase::kStart, "g", seq * 1.0, id);
    tracer.flow(t, Tracer::FlowPhase::kEnd, "g", seq * 1.0 + 0.5, id);
  }
  // seq 0 and 2 kept (both points each), 1 and 3 dropped entirely.
  EXPECT_EQ(tracer.flows().size(), 4u);
  EXPECT_EQ(tracer.sampled_out_events(), 4u);
  for (const Tracer::Flow& f : tracer.flows()) {
    EXPECT_EQ((f.id & ((std::uint64_t{1} << 40) - 1)) % 2, 0u);
  }
}

TEST(TraceSampling, FullFidelityWindowOverridesTheStrides) {
  Tracer tracer;
  TraceSampleConfig cfg;
  cfg.track_stride = 1000;  // samples out every numeric lane
  cfg.full_t0 = 10.0;
  cfg.full_t1 = 20.0;
  tracer.set_sampling(cfg);
  tracer.set_retain_all(false);
  const TrackId w1 = tracer.track("workers", "worker 0001");
  tracer.complete(w1, "before", 0.0, 1.0);    // outside: dropped
  tracer.complete(w1, "straddle", 9.0, 11.0); // overlaps: kept
  tracer.complete(w1, "inside", 12.0, 13.0);  // inside: kept
  tracer.complete(w1, "after", 25.0, 26.0);   // outside: dropped
  EXPECT_EQ(tracer.admitted_events(), 2u);
  EXPECT_EQ(tracer.sampled_out_events(), 2u);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].name, "straddle");
  EXPECT_EQ(tracer.spans()[1].name, "inside");
}

TEST(TraceSampling, RetainOffStoresOnlyTheWindowButStreamsEverything) {
  std::ostringstream out;
  ChromeStreamSink sink(out);
  Tracer tracer;
  tracer.set_sink(&sink);
  TraceSampleConfig cfg;
  cfg.full_t0 = 10.0;
  cfg.full_t1 = 20.0;
  tracer.set_sampling(cfg);
  tracer.set_retain_all(false);
  const TrackId w = tracer.track("workers", "worker 0000");
  for (int i = 0; i < 30; ++i) {
    tracer.complete(w, "step", i * 1.0, i * 1.0 + 0.5);
  }
  tracer.finish();
  // Everything admitted (track_stride 1) and streamed; storage holds only
  // the spans overlapping [10, 20).
  EXPECT_EQ(tracer.admitted_events(), 30u);
  EXPECT_EQ(sink.events_written(), 32u);  // 30 spans + 2 metadata records
  EXPECT_EQ(tracer.spans().size(), 10u);
  EXPECT_GT(tracer.retained_bytes(), 0u);
  EXPECT_LT(tracer.retained_bytes(), 10u * 200u);  // O(window), not O(run)
}

TEST(TraceSampling, ClearResetsCountersAndBytes) {
  Tracer tracer;
  TraceSampleConfig cfg;
  cfg.track_stride = 2;
  tracer.set_sampling(cfg);
  const TrackId w1 = tracer.track("workers", "worker 0001");
  tracer.complete(w1, "s", 0.0, 1.0);
  const TrackId w0 = tracer.track("workers", "worker 0000");
  tracer.complete(w0, "s", 0.0, 1.0);
  EXPECT_GT(tracer.retained_bytes(), 0u);
  tracer.clear();
  EXPECT_EQ(tracer.admitted_events(), 0u);
  EXPECT_EQ(tracer.sampled_out_events(), 0u);
  EXPECT_EQ(tracer.retained_bytes(), 0u);
  // Sampling state survives clear(): worker 0001 is still sampled out.
  tracer.complete(w1, "s", 0.0, 1.0);
  EXPECT_EQ(tracer.sampled_out_events(), 1u);
}

TEST(TraceSampling, UnconfiguredTracerRetainsEverything) {
  Tracer tracer;
  const TrackId w = tracer.track("workers", "worker 0001");
  for (int i = 0; i < 5; ++i) tracer.instant(w, "e", i * 1.0);
  EXPECT_EQ(tracer.admitted_events(), 5u);
  EXPECT_EQ(tracer.sampled_out_events(), 0u);
  EXPECT_EQ(tracer.instants().size(), 5u);
}

}  // namespace
}  // namespace dlion::obs

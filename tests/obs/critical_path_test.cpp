// Critical-path analyzer tests: hand-built toy span/flow DAGs whose exact
// path, segments, attribution, and epoch windows are known in advance, plus
// integration runs where the configured straggler / slow link must be the
// one the report names.
#include "obs/critical_path.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "exp/environments.h"
#include "exp/experiment.h"
#include "obs/obs.h"
#include "obs/tracer.h"
#include "obs/track_names.h"
#include "sim/network.h"
#include "sim/resource_schedule.h"

#include "json_test_util.h"

namespace dlion {
namespace {

using obs::PathCategory;

double cat_s(const obs::CriticalPathReport& r, PathCategory c) {
  return r.category_seconds[static_cast<std::size_t>(c)];
}

// One send crossing a busy link: the walk must reconstruct
//   w0.compute -> (queue) -> link tx -> (latency) -> w1.apply -> w1.compute
// and the category totals are exact.
TEST(CriticalPath, ToyDagReproducesKnownPath) {
  obs::Tracer tr;
  const obs::TrackId w0 = tr.track("workers", "worker 0");
  const obs::TrackId w1 = tr.track("workers", "worker 1");
  const obs::TrackId link = tr.track("network", "link 0->1");

  const std::uint64_t id = (1ull << 40) | 1ull;
  tr.complete(w0, "compute", 0.0, 2.0);
  tr.flow(w0, obs::Tracer::FlowPhase::kStart, "GradientUpdate", 2.0, id);
  // Link is busy until 2.5: the message queues for 0.5 s, transmits for
  // 1.5 s, then takes 0.5 s propagation latency to the delivery point.
  tr.flow(link, obs::Tracer::FlowPhase::kStep, "GradientUpdate", 2.5, id);
  tr.complete(link, "tx", 2.5, 4.0);
  tr.flow(w1, obs::Tracer::FlowPhase::kEnd, "GradientUpdate", 4.5, id);
  tr.complete(w1, "apply", 4.5, 4.5);
  tr.complete(w1, "compute", 4.5, 6.0);

  const obs::CriticalPathReport r =
      obs::compute_critical_path(tr, {/*epoch_seconds=*/2.0});
  ASSERT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.t_start, 0.0);
  EXPECT_DOUBLE_EQ(r.t_end, 6.0);
  EXPECT_DOUBLE_EQ(r.total_seconds(), 6.0);

  // Exact category split: compute 2.0 + 1.5, transfer 1.5 + 0.5 latency,
  // queue 0.5, nothing stalled, no DKT.
  EXPECT_DOUBLE_EQ(cat_s(r, PathCategory::kCompute), 3.5);
  EXPECT_DOUBLE_EQ(cat_s(r, PathCategory::kTransfer), 2.0);
  EXPECT_DOUBLE_EQ(cat_s(r, PathCategory::kQueue), 0.5);
  EXPECT_DOUBLE_EQ(cat_s(r, PathCategory::kStall), 0.0);
  EXPECT_DOUBLE_EQ(cat_s(r, PathCategory::kDkt), 0.0);

  // Segments are chronological and tile [0, 6] exactly.
  ASSERT_EQ(r.segments.size(), 5u);
  EXPECT_EQ(r.segments[0].span_name, "compute");
  EXPECT_EQ(r.segments[0].lane, "worker 0");
  EXPECT_EQ(r.segments[1].span_name, "(queue)");
  EXPECT_EQ(r.segments[1].lane, "link 0->1");
  EXPECT_EQ(r.segments[2].span_name, "tx");
  EXPECT_EQ(r.segments[3].span_name, "(latency)");
  EXPECT_EQ(r.segments[3].category, PathCategory::kTransfer);
  EXPECT_EQ(r.segments[4].span_name, "compute");
  EXPECT_EQ(r.segments[4].lane, "worker 1");
  double prev = r.t_start;
  for (const obs::PathSegment& s : r.segments) {
    EXPECT_DOUBLE_EQ(s.t0, prev);
    prev = s.t1;
  }
  EXPECT_DOUBLE_EQ(prev, r.t_end);

  // Worker 0 carried 2.0 s of on-path compute vs worker 1's 1.5 s.
  EXPECT_EQ(r.straggler, "worker 0");
  EXPECT_EQ(r.bottleneck_link, "link 0->1");

  // Epoch windows [0,2) [2,4) [4,6): each is fully covered and its five
  // fractions sum to exactly 1.
  ASSERT_EQ(r.epochs.size(), 3u);
  EXPECT_DOUBLE_EQ(r.epochs[0].fraction(PathCategory::kCompute), 1.0);
  EXPECT_DOUBLE_EQ(r.epochs[1].seconds[1], 1.5);  // transfer
  EXPECT_DOUBLE_EQ(r.epochs[1].seconds[2], 0.5);  // queue
  EXPECT_DOUBLE_EQ(r.epochs[2].seconds[0], 1.5);  // compute
  EXPECT_DOUBLE_EQ(r.epochs[2].seconds[1], 0.5);  // latency -> transfer
  for (const obs::EpochWindow& w : r.epochs) {
    double f = 0.0;
    for (std::size_t c = 0; c < obs::kNumPathCategories; ++c) {
      f += w.fraction(static_cast<PathCategory>(c));
    }
    EXPECT_NEAR(f, 1.0, 1e-9);
  }
}

// A stall that a delivery released must be charged to the transfer that
// released it, not to the waiting itself.
TEST(CriticalPath, StallReleasedByTransferChargesTheTransfer) {
  obs::Tracer tr;
  const obs::TrackId w0 = tr.track("workers", "worker 0");
  const obs::TrackId w1 = tr.track("workers", "worker 1");
  const obs::TrackId link = tr.track("network", "link 0->1");

  const std::uint64_t id = (1ull << 40) | 1ull;
  tr.complete(w1, "compute", 0.0, 1.0);
  tr.complete(w1, "stall", 1.0, 3.0);  // waiting for worker 0's gradient
  tr.complete(w0, "compute", 0.0, 1.2);
  tr.flow(w0, obs::Tracer::FlowPhase::kStart, "GradientUpdate", 1.2, id);
  tr.flow(link, obs::Tracer::FlowPhase::kStep, "GradientUpdate", 1.2, id);
  tr.complete(link, "tx", 1.2, 2.8);
  tr.flow(w1, obs::Tracer::FlowPhase::kEnd, "GradientUpdate", 3.0, id);
  tr.complete(w1, "apply", 3.0, 3.0);
  tr.complete(w1, "compute", 3.0, 5.0);

  const obs::CriticalPathReport r = obs::compute_critical_path(tr);
  ASSERT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.total_seconds(), 5.0);
  // compute 1.2 + 2.0, transfer 1.6 + 0.2 latency; the 2 s stall never
  // lands on the path because the tx explains the wait.
  EXPECT_DOUBLE_EQ(cat_s(r, PathCategory::kCompute), 3.2);
  EXPECT_DOUBLE_EQ(cat_s(r, PathCategory::kTransfer), 1.8);
  EXPECT_DOUBLE_EQ(cat_s(r, PathCategory::kStall), 0.0);
  EXPECT_EQ(r.bottleneck_link, "link 0->1");
}

// Without a causal explanation the stall itself is on the path.
TEST(CriticalPath, UnexplainedStallStaysOnPath) {
  obs::Tracer tr;
  const obs::TrackId w0 = tr.track("workers", "worker 0");
  tr.complete(w0, "compute", 0.0, 1.0);
  tr.complete(w0, "stall", 1.0, 2.0);
  tr.complete(w0, "compute", 2.0, 4.0);

  const obs::CriticalPathReport r = obs::compute_critical_path(tr);
  ASSERT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.total_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(cat_s(r, PathCategory::kCompute), 3.0);
  EXPECT_DOUBLE_EQ(cat_s(r, PathCategory::kStall), 1.0);
  EXPECT_DOUBLE_EQ(r.category_fraction(PathCategory::kStall), 0.25);
  EXPECT_EQ(r.straggler, "worker 0");
  EXPECT_TRUE(r.bottleneck_link.empty());
}

TEST(CriticalPath, EmptyTracerYieldsInvalidReport) {
  obs::Tracer tr;
  const obs::CriticalPathReport r = obs::compute_critical_path(tr);
  EXPECT_FALSE(r.valid);
  EXPECT_TRUE(r.segments.empty());
  EXPECT_NE(r.attribution_table().find("no spans"), std::string::npos);
}

TEST(CriticalPath, ReportJsonParsesAndMatchesTotals) {
  obs::Tracer tr;
  const obs::TrackId w0 = tr.track("workers", "worker 0");
  tr.complete(w0, "compute", 0.0, 1.0);
  tr.complete(w0, "stall", 1.0, 2.0);
  tr.complete(w0, "compute", 2.0, 4.0);
  const obs::CriticalPathReport r =
      obs::compute_critical_path(tr, {/*epoch_seconds=*/2.0});

  testjson::Json doc;
  ASSERT_TRUE(testjson::JsonParser(r.to_json()).parse(doc));
  ASSERT_EQ(doc.kind, testjson::Json::kObject);
  EXPECT_TRUE(doc.find("valid")->boolean);
  EXPECT_DOUBLE_EQ(doc.find("total_seconds")->number, 4.0);
  const testjson::Json* cats = doc.find("categories");
  ASSERT_NE(cats, nullptr);
  EXPECT_DOUBLE_EQ(cats->find("compute")->find("seconds")->number, 3.0);
  EXPECT_DOUBLE_EQ(cats->find("stall")->find("fraction")->number, 0.25);
  const testjson::Json* epochs = doc.find("epochs");
  ASSERT_NE(epochs, nullptr);
  ASSERT_EQ(epochs->array.size(), 2u);
  for (const testjson::Json& w : epochs->array) {
    const testjson::Json* fr = w.find("fractions");
    ASSERT_NE(fr, nullptr);
    double sum = 0.0;
    for (const char* name : {"compute", "transfer", "queue", "stall", "dkt"}) {
      sum += fr->find(name)->number;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // The table mentions the headline numbers.
  const std::string table = r.attribution_table();
  EXPECT_NE(table.find("critical path: 4.000 s"), std::string::npos);
  EXPECT_NE(table.find("worker 0"), std::string::npos);
}

// ---------------------------------------------------- integration checks

exp::RunResult run_env(const exp::Environment& env, obs::Observability* o,
                       double duration = 40.0) {
  exp::Scale scale;
  scale.duration_s = duration;
  const exp::Workload workload = exp::make_workload("cpu", scale);
  exp::RunSpec spec;
  spec.system = "dlion";
  spec.duration_s = duration;
  spec.eval_period_iters = scale.eval_period_iters;
  spec.dkt_period_iters = scale.dkt_period_iters;
  spec.env_override = env;
  spec.obs = o;
  return exp::run_experiment(spec, workload);
}

#if DLION_OBS_ENABLED

TEST(CriticalPath, HeteroComputeAttributionNamesTheStraggler) {
  exp::Environment env;
  env.name = "straggler-test";
  env.compute = {exp::cpu_cores(24.0), exp::cpu_cores(24.0),
                 exp::cpu_cores(4.0)};
  obs::Observability o;
  run_env(env, &o);
  const obs::CriticalPathReport r = obs::compute_critical_path(o.tracer());
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.straggler, obs::worker_track(2))
      << "6x-slower worker 2 should dominate the critical path";
  // The full-run fractions are self-consistent.
  double total = 0.0;
  for (std::size_t c = 0; c < obs::kNumPathCategories; ++c) {
    total += r.category_seconds[c];
  }
  EXPECT_NEAR(total, r.total_seconds(), 1e-9);
}

TEST(CriticalPath, HeteroNetworkAttributionNamesTheSlowLink) {
  exp::Environment env;
  env.name = "slow-link-test";
  env.compute = {exp::cpu_cores(24.0), exp::cpu_cores(24.0),
                 exp::cpu_cores(24.0)};
  env.network_setup = [](sim::Network& net) {
    net.set_egress(0, sim::Schedule(100.0));
    net.set_egress(1, sim::Schedule(100.0));
    net.set_egress(2, sim::Schedule(4.0));  // worker 2 uploads at a crawl
  };
  obs::Observability o;
  run_env(env, &o);
  const obs::CriticalPathReport r = obs::compute_critical_path(o.tracer());
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.bottleneck_link.rfind("link " + obs::id_str(2) + "->", 0), 0u)
      << "got '" << r.bottleneck_link << "'";
}

TEST(CriticalPath, RealRunEpochFractionsSumToOne) {
  exp::Environment env = exp::make_environment("Hetero CPU A", 20.0);
  obs::Observability o;
  run_env(env, &o);
  const obs::CriticalPathReport r =
      obs::compute_critical_path(o.tracer(), {/*epoch_seconds=*/10.0});
  ASSERT_TRUE(r.valid);
  ASSERT_FALSE(r.epochs.empty());
  for (const obs::EpochWindow& w : r.epochs) {
    if (w.total() == 0.0) continue;  // window fully off-path (none expected)
    double f = 0.0;
    for (std::size_t c = 0; c < obs::kNumPathCategories; ++c) {
      f += w.fraction(static_cast<PathCategory>(c));
    }
    EXPECT_NEAR(f, 1.0, 1e-9);
    // Windows are tiled by the path: per-window seconds equal the window's
    // on-path extent.
    EXPECT_LE(w.total(), (w.t1 - w.t0) + 1e-9);
  }
  // Segments tile the whole path contiguously.
  double prev = r.t_start;
  for (const obs::PathSegment& s : r.segments) {
    ASSERT_DOUBLE_EQ(s.t0, prev);
    prev = s.t1;
  }
  EXPECT_DOUBLE_EQ(prev, r.t_end);
}

TEST(CriticalPath, RunExperimentSummaryMatchesRecomputation) {
  exp::Environment env = exp::make_environment("Homo A", 20.0);
  exp::Scale scale;
  scale.duration_s = 30.0;
  const exp::Workload workload = exp::make_workload("cpu", scale);
  exp::RunSpec spec;
  spec.duration_s = scale.duration_s;
  spec.eval_period_iters = scale.eval_period_iters;
  spec.dkt_period_iters = scale.dkt_period_iters;
  spec.env_override = env;
  spec.collect_critical_path = true;
  const exp::RunResult res = exp::run_experiment(spec, workload);
  ASSERT_TRUE(res.telemetry.collected);
  ASSERT_TRUE(res.telemetry.critical_path.computed);
  EXPECT_GT(res.telemetry.critical_path.total_s, 0.0);
  double total = 0.0;
  for (double s : res.telemetry.critical_path.category_s) total += s;
  EXPECT_NEAR(total, res.telemetry.critical_path.total_s, 1e-9);
  // The summary lands in the telemetry JSON.
  EXPECT_NE(res.telemetry.to_json().find("\"critical_path\""),
            std::string::npos);
}

#endif  // DLION_OBS_ENABLED

}  // namespace
}  // namespace dlion

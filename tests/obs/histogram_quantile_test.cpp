// Tail-percentile behavior of obs::Histogram's interpolating quantile
// estimator, focused on sparse top buckets — the shape serving latency
// histograms take (dense body, a handful of outliers). Complements the
// basic quantile coverage in metrics_test.cpp.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace dlion::obs {
namespace {

TEST(HistogramQuantile, TailRankLandsInSparseTopBucket) {
  // 99 fast observations in the first bucket, one slow outlier in (4, 8].
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 99; ++i) h.observe(0.5);
  h.observe(4.5);
  ASSERT_EQ(h.count(), 100u);

  // p50: rank 50 of 99 in bucket [min=0.5, 1.0] -> 0.5 + 0.5 * 50/99.
  EXPECT_NEAR(h.quantile(0.50), 0.5 + 0.5 * 50.0 / 99.0, 1e-12);
  // p99: rank 99 exactly exhausts the first bucket -> its upper bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1.0);
  // p99.5 / p99.9: rank falls in the single-observation (4, 8] bucket.
  // Raw interpolation gives 6.0 / 7.6 — both past the observed max, so
  // the estimate clamps to 4.5 instead of inventing latency never seen.
  EXPECT_DOUBLE_EQ(h.quantile(0.995), 4.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 4.5);
}

TEST(HistogramQuantile, SingleObservationInOverflowBucket) {
  // One observation above every bound: the overflow bucket's edges are
  // [last bound, observed max], and clamping pins every quantile to the
  // one value actually observed.
  Histogram h({1.0, 2.0, 4.0, 8.0});
  h.observe(100.0);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 100.0) << "q=" << q;
  }
}

TEST(HistogramQuantile, ExtremeQuantilesClampToObservedRange) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 99; ++i) h.observe(0.5);
  h.observe(4.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.observed_min());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.observed_max());
  // Out-of-range q is clamped to [0, 1], not an error.
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.observed_min());
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.observed_max());
}

TEST(HistogramQuantile, TailIsMonotoneOverDefaultTimeBounds) {
  Histogram h(Histogram::default_time_bounds());
  // A latency-like mixture: tight body, stretched tail.
  for (int i = 0; i < 900; ++i) h.observe(0.010 + 1e-5 * i);
  for (int i = 0; i < 90; ++i) h.observe(0.080 + 1e-3 * i);
  for (int i = 0; i < 10; ++i) h.observe(1.5 + 0.25 * i);

  const std::vector<double> qs = {0.50, 0.90, 0.99, 0.995, 0.999, 1.0};
  double prev = h.quantile(qs.front());
  for (std::size_t i = 1; i < qs.size(); ++i) {
    const double cur = h.quantile(qs[i]);
    EXPECT_GE(cur, prev) << "q=" << qs[i];
    prev = cur;
  }
  EXPECT_LE(h.quantile(0.999), h.observed_max());
  EXPECT_GE(h.quantile(0.50), h.observed_min());
}

TEST(HistogramQuantile, EmptyHistogramYieldsNaN) {
  Histogram h({1.0, 2.0});
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.quantile(0.99)));
  EXPECT_TRUE(std::isnan(h.observed_min()));
  EXPECT_TRUE(std::isnan(h.observed_max()));
}

}  // namespace
}  // namespace dlion::obs

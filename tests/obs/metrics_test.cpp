#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace dlion::obs {
namespace {

// ------------------------------------------------------------------- labels

TEST(Labels, CanonicalFormSortsKeys) {
  EXPECT_EQ(canonical_labels({{"worker", "3"}, {"dir", "tx"}}),
            "dir=tx,worker=3");
  EXPECT_EQ(canonical_labels({}), "");
  EXPECT_EQ(canonical_labels({{"a", "1"}}), "a=1");
}

TEST(Labels, OrderInsensitiveSeriesIdentity) {
  MetricsRegistry reg;
  Counter& a = reg.counter("net.sent", {{"worker", "0"}, {"peer", "1"}});
  Counter& b = reg.counter("net.sent", {{"peer", "1"}, {"worker", "0"}});
  EXPECT_EQ(&a, &b) << "label order must not create a new series";
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Labels, DistinctLabelValuesAreDistinctSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("net.sent", {{"worker", "0"}});
  Counter& b = reg.counter("net.sent", {{"worker", "1"}});
  Counter& c = reg.counter("net.sent");  // label-free: yet another series
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(2.0);
  b.inc(3.0);
  c.inc(5.0);
  EXPECT_DOUBLE_EQ(reg.counter_total("net.sent"), 10.0);
  EXPECT_DOUBLE_EQ(reg.counter_total("absent"), 0.0);
}

TEST(Registry, HandlesAreStableAcrossLaterRegistrations) {
  MetricsRegistry reg;
  Counter& first = reg.counter("a");
  first.inc();
  // Registering many more series must not invalidate the cached handle.
  for (int i = 0; i < 100; ++i) {
    reg.counter("series" + std::to_string(i), {{"i", std::to_string(i)}});
  }
  first.inc();
  EXPECT_DOUBLE_EQ(reg.counter("a").value(), 2.0);
  EXPECT_EQ(reg.size(), 101u);
}

TEST(Registry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("cluster.workers");
  g.set(6.0);
  EXPECT_DOUBLE_EQ(g.value(), 6.0);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("cluster.workers").value(), 4.0);
}

// ---------------------------------------------------------------- histogram

TEST(Histogram, CountsSumAndExtremes) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.observed_min()));
  EXPECT_TRUE(std::isnan(h.mean()));
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));

  h.observe(0.5);
  h.observe(3.0);
  h.observe(10.0);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
  EXPECT_DOUBLE_EQ(h.observed_min(), 0.5);
  EXPECT_DOUBLE_EQ(h.observed_max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, DefaultBoundsAreStrictlyIncreasing) {
  for (const auto& bounds : {Histogram::default_time_bounds(),
                             Histogram::default_size_bounds()}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

/// Exact percentile of a sorted sample (nearest-rank).
double exact_percentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(std::ceil(q * static_cast<double>(v.size())),
                       static_cast<double>(v.size())));
  return v[idx == 0 ? 0 : idx - 1];
}

TEST(Histogram, QuantileEstimatesTrackExactPercentiles) {
  // Deterministic pseudo-random samples in (0, 1000 s): estimates from the
  // default log-bucketed histogram must land within one bucket's width of
  // the exact percentile, i.e. relative error bounded by the per-decade
  // bucket ratio (10^(1/4) ~ 1.78).
  Histogram h(Histogram::default_time_bounds());
  std::vector<double> samples;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const double u = static_cast<double>(x % 1000000ull) / 1000000.0;
    const double v = std::pow(10.0, -5.0 + 7.0 * u);  // log-uniform 1e-5..1e2
    samples.push_back(v);
    h.observe(v);
  }
  for (double q : {0.50, 0.90, 0.99}) {
    const double exact = exact_percentile(samples, q);
    const double est = h.quantile(q);
    EXPECT_GT(est, exact / 1.79) << "q=" << q;
    EXPECT_LT(est, exact * 1.79) << "q=" << q;
  }
  // Quantiles are clamped into the observed range and monotone in q.
  EXPECT_GE(h.quantile(0.0), h.observed_min());
  EXPECT_LE(h.quantile(1.0), h.observed_max());
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
}

TEST(Histogram, SingleValueQuantilesCollapse) {
  Histogram h({1.0, 2.0});
  h.observe(1.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.5);
}

// ------------------------------------------------------------------ exports

TEST(Registry, JsonSnapshotShape) {
  MetricsRegistry reg;
  reg.counter("z.last", {{"worker", "0"}}).inc(7.0);
  reg.gauge("a.first").set(1.5);
  Histogram& h = reg.histogram("m.mid", {}, {1.0, 2.0});
  h.observe(0.5);
  h.observe(3.0);

  const std::string json = reg.to_json();
  // Rows sorted by name: a.first, m.mid, z.last.
  const auto a = json.find("a.first");
  const auto m = json.find("m.mid");
  const auto z = json.find("z.last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"worker\":\"0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
  // Overflow bucket exports le = +inf as 1e999.
  EXPECT_NE(json.find("\"le\":1e999"), std::string::npos);
}

TEST(Registry, CsvSnapshotShape) {
  MetricsRegistry reg;
  reg.counter("c", {{"k", "v"}}).inc(2.0);
  reg.histogram("h", {}, {1.0}).observe(0.5);
  const std::string csv = reg.to_csv();
  EXPECT_EQ(csv.rfind("type,name,labels,value,count,sum,min,max,p50,p90,p99\n",
                      0),
            0u);
  EXPECT_NE(csv.find("counter,c,\"k=v\",2,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,\"\","), std::string::npos);
}

TEST(Registry, ExportIsDeterministic) {
  auto build = [] {
    auto reg = std::make_unique<MetricsRegistry>();
    reg->counter("b").inc(1);
    reg->counter("a", {{"x", "2"}}).inc(2);
    reg->gauge("g").set(3);
    reg->histogram("h").observe(0.25);
    return reg;
  };
  const auto r1 = build();
  const auto r2 = build();
  EXPECT_EQ(r1->to_json(), r2->to_json());
  EXPECT_EQ(r1->to_csv(), r2->to_csv());
}

}  // namespace
}  // namespace dlion::obs

// Minimal JSON document model + recursive-descent parser shared by the
// observability tests: just enough to validate the exporters' output
// without external dependencies. Escapes are decoded loosely (\uXXXX maps
// to '?'); numbers use strtod. Header-only, test-only.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace dlion::testjson {

struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json* find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json& out) { return value(out) && (ws(), pos_ == s_.size()); }

 private:
  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char e = s_[pos_ + 1];
        if (e == 'u') {
          if (pos_ + 5 >= s_.size()) return false;
          pos_ += 6;
          out += '?';
          continue;
        }
        out += (e == 'n' ? '\n' : e == 't' ? '\t' : e == 'r' ? '\r' : e);
        pos_ += 2;
      } else {
        out += s_[pos_++];
      }
    }
    return eat('"');
  }
  bool value(Json& out) {
    ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = Json::kObject;
      if (eat('}')) return true;
      do {
        std::string key;
        if (!string(key) || !eat(':')) return false;
        Json v;
        if (!value(v)) return false;
        out.object.emplace(std::move(key), std::move(v));
      } while (eat(','));
      return eat('}');
    }
    if (c == '[') {
      ++pos_;
      out.kind = Json::kArray;
      if (eat(']')) return true;
      do {
        Json v;
        if (!value(v)) return false;
        out.array.push_back(std::move(v));
      } while (eat(','));
      return eat(']');
    }
    if (c == '"') {
      out.kind = Json::kString;
      return string(out.str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out.kind = Json::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out.kind = Json::kBool;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      out.kind = Json::kNull;
      pos_ += 4;
      return true;
    }
    // Number.
    const std::size_t start = pos_;
    if (s_[pos_] == '-' || s_[pos_] == '+') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.kind = Json::kNumber;
    out.number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace dlion::testjson

// Forwarding header: the test-JSON parser moved to src/obs/json_lite.h so
// the fuzz harnesses (fuzz/fuzz_json.cpp) can drive the exact parser the
// observability tests validate exporter output with. Existing test code
// keeps using dlion::testjson::{Json, JsonParser} unchanged.
#pragma once

#include "obs/json_lite.h"

namespace dlion::testjson {

using Json = ::dlion::obs::jsonlite::Json;
using JsonParser = ::dlion::obs::jsonlite::JsonParser;

}  // namespace dlion::testjson

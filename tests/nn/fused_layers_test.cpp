// Bit-identity tests for the fused bias+ReLU epilogues: a Dense/Conv2D
// constructed with fuse_relu=true must produce exactly the same forward
// activations and backward gradients as the unfused layer followed by a
// separate ReLU - that is the contract that lets the model zoo fuse its
// activation pairs without perturbing training trajectories.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"

namespace dlion::nn {
namespace {

tensor::Tensor random_tensor(const tensor::Shape& shape, common::Rng& rng) {
  tensor::Tensor t(shape);
  for (auto& v : t.span()) v = static_cast<float>(rng.normal());
  return t;
}

void expect_bitwise_equal(const tensor::Tensor& a, const tensor::Tensor& b,
                          const char* what) {
  ASSERT_TRUE(a.shape() == b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what;
}

void expect_grads_equal(Layer& fused, Layer& unfused) {
  auto fv = fused.variables();
  auto uv = unfused.variables();
  ASSERT_EQ(fv.size(), uv.size());
  for (std::size_t i = 0; i < fv.size(); ++i) {
    expect_bitwise_equal(fv[i]->grad(), uv[i]->grad(), "variable grad");
  }
}

TEST(FusedDense, ForwardBackwardBitIdenticalToDensePlusReLU) {
  common::Rng rng_a(5), rng_b(5), rng_x(6);
  Dense fused("fused", 13, 9, /*fuse_relu=*/true);
  Dense plain("plain", 13, 9, /*fuse_relu=*/false);
  ReLU relu;
  fused.init_weights(rng_a);
  plain.init_weights(rng_b);

  const auto x = random_tensor(tensor::Shape{4, 13}, rng_x);
  const auto dy = random_tensor(tensor::Shape{4, 9}, rng_x);

  for (int step = 0; step < 3; ++step) {  // repeat: scratch reuse path
    for (Variable* v : fused.variables()) v->zero_grad();
    for (Variable* v : plain.variables()) v->zero_grad();

    tensor::Tensor y_fused = fused.forward(x, /*train=*/true);
    tensor::Tensor y_plain = relu.forward(plain.forward(x, true), true);
    expect_bitwise_equal(y_fused, y_plain, "forward");

    tensor::Tensor dx_fused = fused.backward(dy);
    tensor::Tensor dx_plain = plain.backward(relu.backward(dy));
    expect_bitwise_equal(dx_fused, dx_plain, "input grad");
    expect_grads_equal(fused, plain);
  }
}

TEST(FusedConv2D, ForwardBackwardBitIdenticalToConvPlusReLU) {
  common::Rng rng_a(15), rng_b(15), rng_x(16);
  Conv2D fused("fused", 3, 5, 3, 1, 1, /*fuse_relu=*/true);
  Conv2D plain("plain", 3, 5, 3, 1, 1, /*fuse_relu=*/false);
  ReLU relu;
  fused.init_weights(rng_a);
  plain.init_weights(rng_b);

  const auto x = random_tensor(tensor::Shape{2, 3, 8, 8}, rng_x);
  const auto dy = random_tensor(tensor::Shape{2, 5, 8, 8}, rng_x);

  for (int step = 0; step < 3; ++step) {
    for (Variable* v : fused.variables()) v->zero_grad();
    for (Variable* v : plain.variables()) v->zero_grad();

    tensor::Tensor y_fused = fused.forward(x, /*train=*/true);
    tensor::Tensor y_plain = relu.forward(plain.forward(x, true), true);
    expect_bitwise_equal(y_fused, y_plain, "forward");

    tensor::Tensor dx_fused = fused.backward(dy);
    tensor::Tensor dx_plain = plain.backward(relu.backward(dy));
    expect_bitwise_equal(dx_fused, dx_plain, "input grad");
    expect_grads_equal(fused, plain);
  }
}

TEST(FusedLayers, KindReportsFusion) {
  Dense d("d", 4, 4, /*fuse_relu=*/true);
  Dense p("p", 4, 4);
  Conv2D c("c", 1, 1, 3, 1, 1, /*fuse_relu=*/true);
  EXPECT_STREQ("DenseReLU", d.kind());
  EXPECT_STREQ("Dense", p.kind());
  EXPECT_STREQ("Conv2DReLU", c.kind());
  EXPECT_TRUE(d.fused_relu());
  EXPECT_FALSE(p.fused_relu());
}

}  // namespace
}  // namespace dlion::nn

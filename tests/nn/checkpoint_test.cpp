#include "nn/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/model_zoo.h"

namespace dlion::nn {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "dlion_checkpoint_test.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  common::Rng rng(1);
  BuiltModel original = make_cipher_lite(rng);
  save_checkpoint(original.model, path_);

  common::Rng rng2(999);  // different init
  BuiltModel restored = make_cipher_lite(rng2);
  load_checkpoint(restored.model, path_);

  const Snapshot a = original.model.weights();
  const Snapshot b = restored.model.weights();
  for (std::size_t v = 0; v < a.values.size(); ++v) {
    for (std::size_t i = 0; i < a.values[v].size(); ++i) {
      EXPECT_FLOAT_EQ(a.values[v][i], b.values[v][i]);
    }
  }
}

TEST_F(CheckpointTest, ArchitectureMismatchThrows) {
  common::Rng rng(1);
  BuiltModel cipher = make_cipher_lite(rng);
  save_checkpoint(cipher.model, path_);
  BuiltModel other = make_logistic_regression(rng, 8, 2);
  EXPECT_THROW(load_checkpoint(other.model, path_), std::invalid_argument);
}

TEST_F(CheckpointTest, MissingFileThrows) {
  common::Rng rng(1);
  BuiltModel bm = make_cipher_lite(rng);
  EXPECT_THROW(load_checkpoint(bm.model, path_ + ".does-not-exist"),
               std::runtime_error);
}

TEST_F(CheckpointTest, CorruptMagicThrows) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOPE garbage";
  out.close();
  common::Rng rng(1);
  BuiltModel bm = make_cipher_lite(rng);
  EXPECT_THROW(load_checkpoint(bm.model, path_), std::runtime_error);
}

TEST_F(CheckpointTest, TruncatedFileThrows) {
  common::Rng rng(1);
  BuiltModel bm = make_cipher_lite(rng);
  save_checkpoint(bm.model, path_);
  // Truncate the file to half its size.
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<char> data(size / 2);
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  EXPECT_THROW(load_checkpoint(bm.model, path_), std::exception);
}

}  // namespace
}  // namespace dlion::nn

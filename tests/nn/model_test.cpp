#include "nn/model.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/model_zoo.h"

namespace dlion::nn {
namespace {

TEST(Model, VariableOrderIsDeterministic) {
  common::Rng a(1), b(1);
  const BuiltModel m1 = make_cipher_lite(a);
  const BuiltModel m2 = make_cipher_lite(b);
  ASSERT_EQ(m1.model.num_variables(), m2.model.num_variables());
  for (std::size_t i = 0; i < m1.model.num_variables(); ++i) {
    EXPECT_EQ(m1.model.variables()[i]->name(),
              m2.model.variables()[i]->name());
  }
}

TEST(Model, SameSeedSameWeights) {
  common::Rng a(5), b(5);
  const BuiltModel m1 = make_cipher_lite(a);
  const BuiltModel m2 = make_cipher_lite(b);
  const Snapshot s1 = m1.model.weights(), s2 = m2.model.weights();
  ASSERT_EQ(s1.values.size(), s2.values.size());
  for (std::size_t v = 0; v < s1.values.size(); ++v) {
    for (std::size_t i = 0; i < s1.values[v].size(); ++i) {
      EXPECT_FLOAT_EQ(s1.values[v][i], s2.values[v][i]);
    }
  }
}

TEST(Model, SnapshotRoundTrip) {
  common::Rng rng(2);
  BuiltModel bm = make_cipher_lite(rng);
  const Snapshot original = bm.model.weights();
  for (Variable* v : bm.model.variables()) v->value().fill(0.0f);
  bm.model.set_weights(original);
  const Snapshot restored = bm.model.weights();
  for (std::size_t v = 0; v < original.values.size(); ++v) {
    for (std::size_t i = 0; i < original.values[v].size(); ++i) {
      EXPECT_FLOAT_EQ(restored.values[v][i], original.values[v][i]);
    }
  }
}

TEST(Model, SetWeightsCountMismatchThrows) {
  common::Rng rng(2);
  BuiltModel bm = make_cipher_lite(rng);
  Snapshot bad;
  EXPECT_THROW(bm.model.set_weights(bad), std::invalid_argument);
}

TEST(Model, NumParamsMatchesSnapshot) {
  common::Rng rng(2);
  const BuiltModel bm = make_cipher_lite(rng);
  EXPECT_EQ(bm.model.num_params(), bm.model.weights().num_params());
  EXPECT_GT(bm.model.num_params(), 0u);
}

TEST(Model, ZeroGradsClearsAll) {
  common::Rng rng(2);
  BuiltModel bm = make_cipher_lite(rng);
  data::TrainTest data = data::make_blobs(1, 64, 10, 64, 16);
  auto batch = data::gather(data.train, std::vector<std::size_t>{0, 1, 2, 3});
  (void)bm.model.compute_gradients(batch.images, batch.labels);
  bm.model.zero_grads();
  for (Variable* v : bm.model.variables()) {
    for (std::size_t i = 0; i < v->size(); ++i) {
      EXPECT_FLOAT_EQ(v->grad()[i], 0.0f);
    }
  }
}

TEST(Model, SgdTrainsBlobsToHighAccuracy) {
  common::Rng rng(3);
  BuiltModel bm = make_logistic_regression(rng, 16, 4);
  data::TrainTest data = data::make_blobs(7, 16, 4, 512, 256);
  data::MinibatchSampler sampler(data.train, 9);
  for (int iter = 0; iter < 300; ++iter) {
    const data::Batch batch = sampler.next(32);
    (void)bm.model.compute_gradients(batch.images, batch.labels);
    bm.model.sgd_step(0.2f);
  }
  std::vector<std::size_t> all(data.test.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const data::Batch test = data::gather(data.test, all);
  const LossResult res = bm.model.evaluate(test.images, test.labels);
  EXPECT_GT(res.accuracy, 0.9);
}

TEST(Model, EvaluateDoesNotTouchGradients) {
  common::Rng rng(3);
  BuiltModel bm = make_logistic_regression(rng, 8, 2);
  data::TrainTest data = data::make_blobs(7, 8, 2, 32, 8);
  bm.model.zero_grads();
  auto batch = data::gather(data.test, std::vector<std::size_t>{0, 1});
  (void)bm.model.evaluate(batch.images, batch.labels);
  for (Variable* v : bm.model.variables()) {
    for (std::size_t i = 0; i < v->size(); ++i) {
      EXPECT_FLOAT_EQ(v->grad()[i], 0.0f);
    }
  }
}

class ModelZooTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelZooTest, BuildsAndRunsForward) {
  common::Rng rng(1);
  BuiltModel bm = make_model(GetParam(), rng);
  EXPECT_GT(bm.model.num_params(), 0u);
  EXPECT_GT(bm.profile.nominal_bytes, 0u);
  EXPECT_GT(bm.profile.nominal_flops_per_sample, 0.0);
  tensor::Tensor x(tensor::Shape{2, bm.profile.channels, bm.profile.height,
                                 bm.profile.width});
  const tensor::Tensor logits = bm.model.forward(x, false);
  ASSERT_EQ(logits.shape().rank(), 2u);
  EXPECT_EQ(logits.shape()[0], 2u);
  EXPECT_EQ(logits.shape()[1], bm.profile.classes);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelZooTest,
                         ::testing::Values("cipher", "cipher-lite",
                                           "mobilenet", "mobilenet-20",
                                           "logreg", "mlp"));

TEST(ModelZoo, UnknownNameThrows) {
  common::Rng rng(1);
  EXPECT_THROW(make_model("vgg", rng), std::invalid_argument);
}

TEST(ModelZoo, CipherCnnMatchesPaperArchitecture) {
  common::Rng rng(1);
  const BuiltModel bm = make_cipher_cnn(rng);
  // 3 conv + 2 fc = 5 weight-bearing layers = 10 variables.
  EXPECT_EQ(bm.model.num_variables(), 10u);
  EXPECT_EQ(bm.profile.nominal_bytes, 5'000'000u);
  EXPECT_EQ(bm.profile.classes, 10u);
}

TEST(ModelZoo, MobileNetProfileMatchesPaper) {
  common::Rng rng(1);
  const BuiltModel bm = make_mobilenet_lite(rng);
  EXPECT_EQ(bm.profile.nominal_bytes, 17'000'000u);
  EXPECT_EQ(bm.profile.classes, 100u);
}

}  // namespace
}  // namespace dlion::nn

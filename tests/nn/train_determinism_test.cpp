// End-to-end training determinism: the weights after K SGD steps on the
// cipher CNN must be bit-identical regardless of the thread-pool size and
// of whether the GEMM fan-out is enabled. This is the model-level half of
// the GEMM determinism contract (see tensor/gemm_conformance_test.cpp for
// the kernel-level half), and what lets DLION_THREADS be a pure wall-clock
// knob for experiments.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/model_zoo.h"
#include "tensor/ops.h"

namespace dlion::nn {
namespace {

std::vector<float> train_weights(int steps) {
  common::Rng rng(17);
  auto bm = make_cipher_cnn(rng);
  const std::size_t batch = 8;
  tensor::Tensor images(tensor::Shape{batch, 1, 28, 28});
  std::vector<std::int32_t> labels(batch);
  for (auto& x : images.span()) {
    x = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (auto& l : labels) {
    l = static_cast<std::int32_t>(rng.uniform_int(0, 9));
  }
  for (int i = 0; i < steps; ++i) {
    bm.model.compute_gradients(images, labels);
    bm.model.sgd_step(0.05f);
  }
  std::vector<float> flat;
  for (auto* var : bm.model.variables()) {
    const auto s = var->value().span();
    flat.insert(flat.end(), s.begin(), s.end());
  }
  return flat;
}

void expect_same_weights(const std::vector<float>& a,
                         const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what;
}

TEST(TrainDeterminism, BitIdenticalAcrossThreadPoolSizes) {
  constexpr int kSteps = 3;
  common::ThreadPool::reset_global_for_testing(1);
  const auto serial = train_weights(kSteps);
  common::ThreadPool::reset_global_for_testing(4);
  const auto four = train_weights(kSteps);
  common::ThreadPool::reset_global_for_testing(0);  // pool default
  const auto pool_default = train_weights(kSteps);
  expect_same_weights(serial, four, "1 vs 4 threads");
  expect_same_weights(serial, pool_default, "1 vs default threads");
}

TEST(TrainDeterminism, BitIdenticalWithGemmFanOutDisabled) {
  constexpr int kSteps = 2;
  const bool prev = tensor::set_gemm_parallel(false);
  const auto serial = train_weights(kSteps);
  tensor::set_gemm_parallel(true);
  const auto pooled = train_weights(kSteps);
  tensor::set_gemm_parallel(prev);
  expect_same_weights(serial, pooled, "gemm fan-out off vs on");
}

}  // namespace
}  // namespace dlion::nn

#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/model_zoo.h"

namespace dlion::nn {
namespace {

BuiltModel quadratic_model(std::uint64_t seed) {
  common::Rng rng(seed);
  return make_logistic_regression(rng, 8, 2);
}

double train_blobs(Optimizer& opt, int iterations) {
  common::Rng rng(1);
  BuiltModel bm = make_logistic_regression(rng, 16, 4);
  data::TrainTest data = data::make_blobs(3, 16, 4, 512, 256);
  data::MinibatchSampler sampler(data.train, 7);
  for (int i = 0; i < iterations; ++i) {
    const data::Batch batch = sampler.next(32);
    (void)bm.model.compute_gradients(batch.images, batch.labels);
    opt.step(bm.model);
  }
  std::vector<std::size_t> all(data.test.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const data::Batch test = data::gather(data.test, all);
  return bm.model.evaluate(test.images, test.labels).accuracy;
}

TEST(Sgd, PlainStepMatchesManualUpdate) {
  BuiltModel bm = quadratic_model(1);
  for (Variable* v : bm.model.variables()) v->grad().fill(2.0f);
  const Snapshot before = bm.model.weights();
  Sgd opt(0.5);
  opt.step(bm.model);
  const Snapshot after = bm.model.weights();
  for (std::size_t v = 0; v < before.values.size(); ++v) {
    for (std::size_t i = 0; i < before.values[v].size(); ++i) {
      EXPECT_NEAR(after.values[v][i], before.values[v][i] - 1.0f, 1e-6);
    }
  }
}

TEST(Sgd, MomentumAccumulates) {
  BuiltModel bm = quadratic_model(2);
  for (Variable* v : bm.model.variables()) v->value().fill(0.0f);
  Sgd opt(1.0, /*momentum=*/0.5);
  for (Variable* v : bm.model.variables()) v->grad().fill(1.0f);
  opt.step(bm.model);  // v=1, w=-1
  for (Variable* v : bm.model.variables()) v->grad().fill(1.0f);
  opt.step(bm.model);  // v=1.5, w=-2.5
  for (Variable* var : bm.model.variables()) {
    EXPECT_NEAR(var->value()[0], -2.5f, 1e-6);
  }
}

TEST(Sgd, WeightDecayShrinksWeights) {
  BuiltModel bm = quadratic_model(3);
  for (Variable* v : bm.model.variables()) {
    v->value().fill(1.0f);
    v->zero_grad();
  }
  Sgd opt(0.1, 0.0, /*weight_decay=*/0.5);
  opt.step(bm.model);
  // w -= lr * wd * w = 1 - 0.05
  for (Variable* var : bm.model.variables()) {
    EXPECT_NEAR(var->value()[0], 0.95f, 1e-6);
  }
}

TEST(Sgd, TrainsBlobs) {
  Sgd opt(0.2, 0.9);
  EXPECT_GT(train_blobs(opt, 150), 0.9);
}

TEST(Sgd, InvalidConfigThrows) {
  EXPECT_THROW(Sgd(0.0), std::invalid_argument);
  EXPECT_THROW(Sgd(0.1, 1.0), std::invalid_argument);
}

TEST(Adam, TrainsBlobs) {
  Adam opt(0.02);
  EXPECT_GT(train_blobs(opt, 200), 0.9);
}

TEST(Adam, FirstStepIsLrSizedRegardlessOfGradScale) {
  // Adam's bias-corrected first step is ~lr * sign(g).
  for (float scale : {1e-3f, 1.0f, 1e3f}) {
    BuiltModel bm = quadratic_model(4);
    for (Variable* v : bm.model.variables()) {
      v->value().fill(0.0f);
      v->grad().fill(scale);
    }
    Adam opt(0.1);
    opt.step(bm.model);
    for (Variable* var : bm.model.variables()) {
      EXPECT_NEAR(var->value()[0], -0.1f, 1e-3) << "scale " << scale;
    }
  }
}

TEST(Adam, InvalidConfigThrows) {
  EXPECT_THROW(Adam(-1.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(Adam(0.1, 0.9, 1.5), std::invalid_argument);
}

TEST(Optimizer, Names) {
  Sgd sgd(0.1);
  Adam adam(0.1);
  EXPECT_STREQ(sgd.name(), "sgd");
  EXPECT_STREQ(adam.name(), "adam");
}

}  // namespace
}  // namespace dlion::nn

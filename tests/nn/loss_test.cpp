#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace dlion::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  tensor::Tensor logits(tensor::Shape{3, 4}, {1, 2, 3,  4, -1, 0, 1, 2,
                                              100, 100, 100, 100});
  const tensor::Tensor p = softmax(logits);
  for (std::size_t r = 0; r < 3; ++r) {
    double s = 0;
    for (std::size_t c = 0; c < 4; ++c) s += p.at(r, c);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableAtLargeLogits) {
  tensor::Tensor logits(tensor::Shape{1, 2}, {1000.0f, 999.0f});
  const tensor::Tensor p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[0], p[1]);
}

TEST(Softmax, UniformLogitsGiveUniformProbs) {
  tensor::Tensor logits(tensor::Shape{1, 5}, 0.0f);
  const tensor::Tensor p = softmax(logits);
  for (std::size_t c = 0; c < 5; ++c) EXPECT_NEAR(p[c], 0.2, 1e-6);
}

TEST(SoftmaxCrossEntropy, UniformLogitsLossIsLogC) {
  tensor::Tensor logits(tensor::Shape{2, 10}, 0.0f);
  std::vector<std::int32_t> labels = {3, 7};
  const LossResult res = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(res.loss, std::log(10.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, AccuracyCountsArgmax) {
  tensor::Tensor logits(tensor::Shape{2, 3}, {5, 0, 0, 0, 0, 5});
  std::vector<std::int32_t> labels = {0, 0};
  const LossResult res = softmax_cross_entropy(logits, labels);
  EXPECT_DOUBLE_EQ(res.accuracy, 0.5);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  common::Rng rng(4);
  tensor::Tensor logits(tensor::Shape{3, 5});
  for (auto& v : logits.span()) v = static_cast<float>(rng.normal());
  std::vector<std::int32_t> labels = {0, 2, 4};
  const LossResult res = softmax_cross_entropy(logits, labels);
  for (std::size_t r = 0; r < 3; ++r) {
    double s = 0;
    for (std::size_t c = 0; c < 5; ++c) s += res.grad_logits.at(r, c);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesNumerical) {
  common::Rng rng(11);
  tensor::Tensor logits(tensor::Shape{2, 4});
  for (auto& v : logits.span()) v = static_cast<float>(rng.normal());
  std::vector<std::int32_t> labels = {1, 3};
  const LossResult res = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    tensor::Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const double num = (softmax_cross_entropy(lp, labels).loss -
                        softmax_cross_entropy(lm, labels).loss) /
                       (2.0 * eps);
    EXPECT_NEAR(res.grad_logits[i], num, 1e-3) << "at " << i;
  }
}

TEST(SoftmaxCrossEntropy, LabelOutOfRangeThrows) {
  tensor::Tensor logits(tensor::Shape{1, 3});
  std::vector<std::int32_t> labels = {3};
  EXPECT_THROW(softmax_cross_entropy(logits, labels), std::out_of_range);
}

TEST(SoftmaxCrossEntropy, BatchMismatchThrows) {
  tensor::Tensor logits(tensor::Shape{2, 3});
  std::vector<std::int32_t> labels = {0};
  EXPECT_THROW(softmax_cross_entropy(logits, labels), std::invalid_argument);
}

}  // namespace
}  // namespace dlion::nn

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"

namespace dlion::nn {
namespace {

// Numerical gradient check for one layer: compares the analytic gradients
// (input + every variable) against central differences of a scalar loss
// L = sum(w_out .* forward(x)).
void gradcheck_layer(Layer& layer, const tensor::Tensor& input,
                     double tol = 2e-2) {
  common::Rng rng(7);
  tensor::Tensor out = layer.forward(input, /*train=*/true);
  tensor::Tensor loss_weights(out.shape());
  for (auto& v : loss_weights.span()) {
    v = static_cast<float>(rng.normal());
  }

  auto loss_of = [&](const tensor::Tensor& x) {
    tensor::Tensor y = layer.forward(x, /*train=*/true);
    double l = 0;
    for (std::size_t i = 0; i < y.size(); ++i) l += y[i] * loss_weights[i];
    return l;
  };

  // Analytic gradients.
  for (Variable* v : layer.variables()) v->zero_grad();
  (void)layer.forward(input, /*train=*/true);
  tensor::Tensor grad_in = layer.backward(loss_weights);

  // Numerical input gradient.
  const float eps = 1e-3f;
  tensor::Tensor x = input;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double lp = loss_of(x);
    x[i] = orig - eps;
    const double lm = loss_of(x);
    x[i] = orig;
    const double num = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], num, tol) << "input grad at " << i;
  }

  // Numerical variable gradients (sampled to bound runtime).
  for (Variable* var : layer.variables()) {
    // Re-run analytic pass to have fresh grads for this check.
    var->zero_grad();
    (void)layer.forward(input, /*train=*/true);
    (void)layer.backward(loss_weights);
    const std::size_t stride = std::max<std::size_t>(1, var->size() / 24);
    for (std::size_t i = 0; i < var->size(); i += stride) {
      float& w = var->value()[i];
      const float orig = w;
      w = orig + eps;
      const double lp = loss_of(input);
      w = orig - eps;
      const double lm = loss_of(input);
      w = orig;
      const double num = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(var->grad()[i], num, tol)
          << var->name() << " grad at " << i;
    }
  }
}

tensor::Tensor random_tensor(tensor::Shape shape, std::uint64_t seed) {
  common::Rng rng(seed);
  tensor::Tensor t(std::move(shape));
  for (auto& v : t.span()) v = static_cast<float>(rng.normal());
  return t;
}

TEST(Dense, ForwardMatchesManual) {
  Dense layer("fc", 2, 2);
  // W = [[1,2],[3,4]], b = [10, 20]
  layer.variables()[0]->value() = tensor::Tensor(tensor::Shape{2, 2},
                                                 {1, 2, 3, 4});
  layer.variables()[1]->value() = tensor::Tensor(tensor::Shape{2}, {10, 20});
  tensor::Tensor x(tensor::Shape{1, 2}, {1, 1});
  const tensor::Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 14.0f);  // 1+3+10
  EXPECT_FLOAT_EQ(y[1], 26.0f);  // 2+4+20
}

TEST(Dense, GradCheck) {
  Dense layer("fc", 3, 4);
  common::Rng rng(1);
  layer.init_weights(rng);
  gradcheck_layer(layer, random_tensor(tensor::Shape{2, 3}, 2));
}

TEST(Dense, RejectsWrongInputShape) {
  Dense layer("fc", 3, 4);
  tensor::Tensor bad(tensor::Shape{2, 5});
  EXPECT_THROW(layer.forward(bad, false), std::invalid_argument);
}

TEST(Dense, VariableNamesAndSizes) {
  Dense layer("enc", 3, 4);
  const auto vars = layer.variables();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0]->name(), "enc/W");
  EXPECT_EQ(vars[1]->name(), "enc/b");
  EXPECT_EQ(vars[0]->size(), 12u);
  EXPECT_EQ(vars[1]->size(), 4u);
}

TEST(Conv2D, GradCheck) {
  Conv2D layer("conv", 2, 3, 3, 1, 1);
  common::Rng rng(1);
  layer.init_weights(rng);
  gradcheck_layer(layer, random_tensor(tensor::Shape{2, 2, 4, 4}, 3));
}

TEST(Conv2D, StridedGradCheck) {
  Conv2D layer("conv", 1, 2, 3, 2, 1);
  common::Rng rng(2);
  layer.init_weights(rng);
  gradcheck_layer(layer, random_tensor(tensor::Shape{1, 1, 5, 5}, 4));
}

TEST(Conv2D, OutputShape) {
  Conv2D layer("conv", 1, 10, 5, 1, 2);
  common::Rng rng(1);
  layer.init_weights(rng);
  const tensor::Tensor y =
      layer.forward(random_tensor(tensor::Shape{3, 1, 28, 28}, 5), false);
  EXPECT_TRUE(y.shape() == tensor::Shape({3, 10, 28, 28}));
}

TEST(DepthwiseConv2D, GradCheck) {
  DepthwiseConv2D layer("dw", 2, 3, 1, 1);
  common::Rng rng(1);
  layer.init_weights(rng);
  gradcheck_layer(layer, random_tensor(tensor::Shape{1, 2, 4, 4}, 6));
}

TEST(DepthwiseConv2D, ChannelsStayIndependent) {
  DepthwiseConv2D layer("dw", 2, 1, 1, 0);
  layer.variables()[0]->value() = tensor::Tensor(tensor::Shape{2, 1}, {2, 3});
  layer.variables()[1]->value().fill(0.0f);
  tensor::Tensor x(tensor::Shape{1, 2, 1, 1}, {1, 1});
  const tensor::Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU layer;
  tensor::Tensor x(tensor::Shape{4}, {-1, 0, 2, -3});
  const tensor::Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU layer;
  tensor::Tensor x(tensor::Shape{3}, {-1, 1, 2});
  (void)layer.forward(x, true);
  tensor::Tensor g(tensor::Shape{3}, {5, 5, 5});
  const tensor::Tensor gi = layer.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 5.0f);
  EXPECT_FLOAT_EQ(gi[2], 5.0f);
}

TEST(Flatten, RoundTripsShape) {
  Flatten layer;
  tensor::Tensor x = random_tensor(tensor::Shape{2, 3, 4, 5}, 7);
  const tensor::Tensor y = layer.forward(x, false);
  EXPECT_TRUE(y.shape() == tensor::Shape({2, 60}));
  const tensor::Tensor back = layer.backward(y);
  EXPECT_TRUE(back.shape() == x.shape());
}

TEST(Dropout, InferencePassesThrough) {
  Dropout layer(0.5, 1);
  tensor::Tensor x = random_tensor(tensor::Shape{2, 8}, 8);
  const tensor::Tensor y = layer.forward(x, /*train=*/false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainZeroesApproximatelyPFraction) {
  Dropout layer(0.5, 2);
  tensor::Tensor x(tensor::Shape{10000}, 1.0f);
  const tensor::Tensor y = layer.forward(x, /*train=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.5, 0.03);
}

TEST(Dropout, KeptUnitsAreRescaled) {
  Dropout layer(0.5, 3);
  tensor::Tensor x(tensor::Shape{100}, 1.0f);
  const tensor::Tensor y = layer.forward(x, /*train=*/true);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] != 0.0f) {
      EXPECT_FLOAT_EQ(y[i], 2.0f);
    }
  }
}

TEST(Dropout, InvalidProbabilityThrows) {
  EXPECT_THROW(Dropout(1.0, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1, 1), std::invalid_argument);
}

TEST(MaxPool2D, ForwardPicksMaxima) {
  MaxPool2D layer(2);
  tensor::Tensor x(tensor::Shape{1, 1, 2, 2}, {1, 5, 3, 2});
  const tensor::Tensor y = layer.forward(x, false);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(MaxPool2D, BackwardRoutesToArgmax) {
  MaxPool2D layer(2);
  tensor::Tensor x(tensor::Shape{1, 1, 2, 2}, {1, 5, 3, 2});
  (void)layer.forward(x, true);
  tensor::Tensor g(tensor::Shape{1, 1, 1, 1}, {7});
  const tensor::Tensor gi = layer.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 7.0f);
  EXPECT_FLOAT_EQ(gi[2], 0.0f);
}

TEST(MaxPool2D, OutputShape) {
  MaxPool2D layer(2);
  const tensor::Tensor y =
      layer.forward(random_tensor(tensor::Shape{2, 3, 8, 8}, 9), false);
  EXPECT_TRUE(y.shape() == tensor::Shape({2, 3, 4, 4}));
}

TEST(GlobalAvgPool, ForwardAverages) {
  GlobalAvgPool layer;
  tensor::Tensor x(tensor::Shape{1, 2, 1, 2}, {1, 3, 10, 20});
  const tensor::Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 15.0f);
}

TEST(GlobalAvgPool, BackwardSpreadsUniformly) {
  GlobalAvgPool layer;
  tensor::Tensor x = random_tensor(tensor::Shape{1, 1, 2, 2}, 10);
  (void)layer.forward(x, true);
  tensor::Tensor g(tensor::Shape{1, 1}, {8});
  const tensor::Tensor gi = layer.backward(g);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gi[i], 2.0f);
}

}  // namespace
}  // namespace dlion::nn

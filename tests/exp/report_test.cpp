#include "exp/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dlion::exp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override { path_ = ::testing::TempDir() + "dlion_report.csv"; }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(ReportTest, TraceCsvFormat) {
  sim::Trace t("accuracy");
  t.record(1.0, 0.5);
  t.record(2.5, 0.75);
  write_trace_csv(t, path_);
  EXPECT_EQ(slurp(path_), "time,accuracy\n1,0.5\n2.5,0.75\n");
}

TEST_F(ReportTest, UnnamedTraceUsesValueHeader) {
  sim::Trace t;
  t.record(1.0, 2.0);
  write_trace_csv(t, path_);
  EXPECT_EQ(slurp(path_).substr(0, 10), "time,value");
}

TEST_F(ReportTest, CurvesCsvAlignsTimeAxis) {
  sim::Trace a("a"), b("b");
  a.record(1.0, 0.1);
  a.record(3.0, 0.3);
  b.record(2.0, 0.2);
  write_curves_csv({"a", "b"}, {&a, &b}, path_);
  const std::string csv = slurp(path_);
  EXPECT_EQ(csv,
            "time,a,b\n"
            "1,0.1,\n"
            "2,0.1,0.2\n"
            "3,0.3,0.2\n");
}

TEST_F(ReportTest, CurvesCsvMismatchThrows) {
  sim::Trace a("a");
  EXPECT_THROW(write_curves_csv({"a", "b"}, {&a}, path_),
               std::invalid_argument);
}

TEST_F(ReportTest, BadDirectoryThrows) {
  sim::Trace t("x");
  t.record(0.0, 0.0);
  EXPECT_THROW(write_trace_csv(t, "/no/such/dir/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace dlion::exp

#include "exp/environments.h"

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace dlion::exp {
namespace {

TEST(Environments, AllNamedEnvironmentsBuild) {
  for (const std::string& name : environment_names()) {
    const Environment env = make_environment(name, 100.0);
    EXPECT_EQ(env.name, name);
    EXPECT_EQ(env.compute.size(), kWorkers);
  }
}

TEST(Environments, UnknownNameThrows) {
  EXPECT_THROW(make_environment("Mars DC"), std::invalid_argument);
}

TEST(Environments, HeteroCpuAValuesMatchTable3) {
  const Environment env = make_environment("Hetero CPU A");
  const std::vector<double> expected = {24, 24, 12, 12, 6, 6};
  for (std::size_t i = 0; i < kWorkers; ++i) {
    EXPECT_DOUBLE_EQ(env.compute[i].units.at(0.0), expected[i]);
  }
  EXPECT_FALSE(env.network_setup);  // LAN
  EXPECT_FALSE(env.gpu);
}

TEST(Environments, HeteroCpuBHasDistinctStraggler) {
  const Environment env = make_environment("Hetero CPU B");
  EXPECT_DOUBLE_EQ(env.compute[5].units.at(0.0), 4.0);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(env.compute[i].units.at(0.0), 24.0);
  }
}

TEST(Environments, NetworkShapingAppliesTable3Bandwidths) {
  const Environment env = make_environment("Hetero NET A");
  sim::Engine engine;
  sim::Network net(engine, kWorkers);
  ASSERT_TRUE(env.network_setup);
  env.network_setup(net);
  const std::vector<double> expected = {50, 50, 35, 35, 20, 20};
  for (std::size_t i = 0; i < kWorkers; ++i) {
    EXPECT_DOUBLE_EQ(net.egress_mbps(i), expected[i]);
  }
}

TEST(Environments, HeteroSysBReversesBandwidth) {
  const Environment env = make_environment("Hetero SYS B");
  sim::Engine engine;
  sim::Network net(engine, kWorkers);
  env.network_setup(net);
  EXPECT_DOUBLE_EQ(net.egress_mbps(0), 20.0);
  EXPECT_DOUBLE_EQ(net.egress_mbps(5), 50.0);
  EXPECT_DOUBLE_EQ(env.compute[0].units.at(0.0), 24.0);
  EXPECT_DOUBLE_EQ(env.compute[5].units.at(0.0), 6.0);
}

TEST(Environments, GpuEnvironmentsUseGpuCalibration) {
  const Environment homo_c = make_environment("Homo C");
  EXPECT_TRUE(homo_c.gpu);
  for (const auto& c : homo_c.compute) {
    EXPECT_DOUBLE_EQ(c.units.at(0.0), 1.0);
    EXPECT_DOUBLE_EQ(c.flops_per_unit, sim::kGpuUnitFlops);
  }
  const Environment sys_c = make_environment("Hetero SYS C");
  EXPECT_DOUBLE_EQ(sys_c.compute[0].units.at(0.0), 8.0);  // p2.8xlarge
  EXPECT_DOUBLE_EQ(sys_c.compute[5].units.at(0.0), 1.0);  // p2.xlarge
}

TEST(Environments, DynamicSysAPhasesFollowTable3) {
  const double phase = 100.0;
  const Environment env = make_environment("Dynamic SYS A", phase);
  // Phase 1 = Homo B (24 cores), phase 2-3 = Hetero cores.
  EXPECT_DOUBLE_EQ(env.compute[4].units.at(50.0), 24.0);
  EXPECT_DOUBLE_EQ(env.compute[4].units.at(150.0), 6.0);
  sim::Engine engine;
  sim::Network net(engine, kWorkers);
  env.network_setup(net);
  // Worker 0 egress: 50 (Homo B) -> 50 (SYS A) -> 20 (SYS B).
  EXPECT_DOUBLE_EQ(net.egress_mbps(0), 50.0);
  engine.at(150.0, [] {});
  engine.run();
  EXPECT_DOUBLE_EQ(net.egress_mbps(0), 50.0);
  engine.at(250.0, [] {});
  engine.run();
  EXPECT_DOUBLE_EQ(net.egress_mbps(0), 20.0);
}

TEST(Environments, DynamicSysBIsReversed) {
  const double phase = 100.0;
  const Environment env = make_environment("Dynamic SYS B", phase);
  // Worker 4: Hetero cores 6 -> 6 -> 24.
  EXPECT_DOUBLE_EQ(env.compute[4].units.at(50.0), 6.0);
  EXPECT_DOUBLE_EQ(env.compute[4].units.at(250.0), 24.0);
}

TEST(WanMatrix, MatchesTable2Values) {
  const auto& m = wan_bandwidth_matrix();
  ASSERT_EQ(m.size(), 6u);
  // Spot-check the paper's Table 2 entries.
  EXPECT_DOUBLE_EQ(m[0][1], 190.0);  // Virginia -> Oregon
  EXPECT_DOUBLE_EQ(m[0][3], 53.0);   // Virginia -> Mumbai
  EXPECT_DOUBLE_EQ(m[2][4], 30.0);   // Ireland -> Seoul
  EXPECT_DOUBLE_EQ(m[5][2], 36.0);   // Sydney -> Ireland
  EXPECT_DOUBLE_EQ(m[3][0], 53.0);   // Mumbai -> Virginia
}

TEST(WanMatrix, EnvironmentAppliesLinks) {
  const Environment env = make_wan_matrix_environment();
  sim::Engine engine;
  sim::Network net(engine, kWorkers);
  env.network_setup(net);
  EXPECT_DOUBLE_EQ(net.link_mbps(0, 1), 190.0);
  EXPECT_DOUBLE_EQ(net.link_mbps(2, 4), 30.0);
}

TEST(WanMatrix, RegionNames) {
  ASSERT_EQ(wan_region_names().size(), 6u);
  EXPECT_EQ(wan_region_names()[0], "Virginia");
  EXPECT_EQ(wan_region_names()[5], "Sydney");
}

}  // namespace
}  // namespace dlion::exp

// Shape regression tests: the headline qualitative results of the paper's
// evaluation, pinned as assertions. Every run is deterministic (fixed
// seeds), so these are stable regression tests, not flaky statistics.
#include <gtest/gtest.h>

#include "exp/experiment.h"

namespace dlion::exp {
namespace {

class ShapesTest : public ::testing::Test {
 protected:
  static RunResult run(const std::string& system, const std::string& env,
                       double duration) {
    static Scale scale;  // bench defaults, seed 42
    static Workload workload = make_workload("cpu", scale);
    RunSpec spec;
    spec.system = system;
    spec.environment = env;
    spec.duration_s = duration;
    spec.seed = scale.seed;
    return run_experiment(spec, workload);
  }
};

TEST_F(ShapesTest, DlionBeatsDenseSystemsInHeteroSys) {
  // Fig. 11: in Hetero SYS A, DLion > {Baseline, Hop} by a wide margin.
  const RunResult dlion = run("dlion", "Hetero SYS A", 200.0);
  const RunResult baseline = run("baseline", "Hetero SYS A", 200.0);
  const RunResult hop = run("hop", "Hetero SYS A", 200.0);
  EXPECT_GT(dlion.final_accuracy, baseline.final_accuracy * 1.1);
  EXPECT_GT(dlion.final_accuracy, hop.final_accuracy * 1.1);
}

TEST_F(ShapesTest, ConstrainedNetworkHurtsDenseSystemsMost) {
  // Fig. 15: moving from LAN (Homo A) to a 50 Mbps WAN (Homo B) costs the
  // full-gradient Baseline far more accuracy than DLion.
  const double baseline_drop = run("baseline", "Homo A", 150.0).final_accuracy -
                               run("baseline", "Homo B", 150.0).final_accuracy;
  const double dlion_drop = run("dlion", "Homo A", 150.0).final_accuracy -
                            run("dlion", "Homo B", 150.0).final_accuracy;
  EXPECT_GT(baseline_drop, dlion_drop);
}

TEST_F(ShapesTest, DktShrinksAccuracyDeviation) {
  // Fig. 17: DLion's cross-worker accuracy deviation is below async Ako's.
  const RunResult dlion = run("dlion", "Hetero SYS B", 150.0);
  const RunResult ako = run("ako", "Hetero SYS B", 150.0);
  EXPECT_LT(dlion.accuracy_stddev, ako.accuracy_stddev);
}

TEST_F(ShapesTest, SparsifiedSystemsSendFarFewerBytes) {
  // §5.2.4: Max N-style exchange moves an order of magnitude less data than
  // dense exchange over the same window.
  const RunResult maxn = run("maxn", "Homo B", 100.0);
  const RunResult baseline = run("baseline", "Homo B", 100.0);
  EXPECT_LT(maxn.total_bytes * 5, baseline.total_bytes);
  // ... while iterating faster (less time blocked on the network).
  EXPECT_GT(maxn.total_iterations, baseline.total_iterations);
}

TEST_F(ShapesTest, DynamicBatchingSpeedsUpHeteroCompute) {
  // Fig. 14: dynamic batching cuts time-to-target in Hetero CPU A.
  const RunResult with_db = run("dlion-no-wu", "Hetero CPU A", 250.0);
  const RunResult without_db = run("dlion-no-dbwu", "Hetero CPU A", 250.0);
  const double t_with = with_db.mean_curve.time_to_reach(0.6);
  const double t_without = without_db.mean_curve.time_to_reach(0.6);
  EXPECT_LT(t_with, t_without);
}

}  // namespace
}  // namespace dlion::exp

#include "exp/experiment.h"

#include <gtest/gtest.h>

namespace dlion::exp {
namespace {

Workload tiny_cpu_workload() {
  Scale scale;
  scale.seed = 3;
  Workload w = make_workload("cpu", scale);
  return w;
}

TEST(Scale, BenchDefaults) {
  common::Config cfg;
  const Scale s = Scale::from_config(cfg);
  EXPECT_FALSE(s.paper);
  EXPECT_DOUBLE_EQ(s.duration_s, 300.0);
  EXPECT_EQ(s.repeats, 1u);
  EXPECT_EQ(s.eval_period_iters, 5u);
  EXPECT_EQ(s.dkt_period_iters, 25u);
}

TEST(Scale, PaperOverrides) {
  common::Config cfg;
  cfg.set("scale", "paper");
  const Scale s = Scale::from_config(cfg);
  EXPECT_TRUE(s.paper);
  EXPECT_DOUBLE_EQ(s.duration_s, 1500.0);   // §5.2.1
  EXPECT_DOUBLE_EQ(s.gpu_duration_s, 7200.0);
  EXPECT_DOUBLE_EQ(s.dynamic_phase_s, 500.0);
  EXPECT_EQ(s.repeats, 3u);
  EXPECT_EQ(s.eval_period_iters, 20u);      // §5.1.3
  EXPECT_EQ(s.dkt_period_iters, 100u);      // §5.1.4
}

TEST(Scale, FlagsOverrideDefaults) {
  common::Config cfg;
  cfg.set("duration", "42.5");
  cfg.set("seed", "9");
  cfg.set("repeats", "2");
  const Scale s = Scale::from_config(cfg);
  EXPECT_DOUBLE_EQ(s.duration_s, 42.5);
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.repeats, 2u);
}

TEST(Workload, CpuWorkloadShapes) {
  const Workload w = tiny_cpu_workload();
  EXPECT_EQ(w.model, "cipher-lite");
  EXPECT_EQ(w.data.train.size(), 6000u);
  EXPECT_GT(w.learning_rate, 0.0);
}

TEST(Workload, GpuWorkloadShapes) {
  Scale scale;
  const Workload w = make_workload("gpu", scale);
  EXPECT_EQ(w.model, "mobilenet-20");
  EXPECT_EQ(w.data.train.images.shape()[1], 3u);
}

TEST(Workload, UnknownKindThrows) {
  Scale scale;
  EXPECT_THROW(make_workload("tpu", scale), std::invalid_argument);
}

TEST(RunExperiment, ShortRunProducesMetrics) {
  const Workload w = tiny_cpu_workload();
  RunSpec spec;
  spec.system = "dlion";
  spec.environment = "Homo A";
  spec.duration_s = 40.0;
  const RunResult res = run_experiment(spec, w);
  EXPECT_EQ(res.system, "dlion");
  EXPECT_EQ(res.environment, "Homo A");
  EXPECT_GT(res.total_iterations, 0u);
  EXPECT_GT(res.total_bytes, 0u);
  EXPECT_GE(res.final_accuracy, 0.0);
  EXPECT_LE(res.final_accuracy, 1.0);
  EXPECT_FALSE(res.mean_curve.empty());
}

TEST(RunExperiment, EnvOverrideWins) {
  const Workload w = tiny_cpu_workload();
  RunSpec spec;
  spec.system = "baseline";
  spec.environment = "Homo A";
  spec.env_override = make_wan_matrix_environment();
  spec.duration_s = 20.0;
  const RunResult res = run_experiment(spec, w);
  EXPECT_EQ(res.environment, "WAN Table2");
}

TEST(RunExperiment, ExtraConfigureApplies) {
  const Workload w = tiny_cpu_workload();
  RunSpec spec;
  spec.system = "dlion";
  spec.environment = "Homo A";
  spec.duration_s = 20.0;
  bool called = false;
  spec.extra_configure = [&](core::WorkerOptions& o) {
    called = true;
    o.max_iterations = 3;
  };
  const RunResult res = run_experiment(spec, w);
  EXPECT_TRUE(called);
  EXPECT_LE(res.total_iterations, 6u * 3u);
}

TEST(RunRepeated, AggregatesAcrossSeeds) {
  const Workload w = tiny_cpu_workload();
  RunSpec spec;
  spec.system = "baseline";
  spec.environment = "Homo A";
  spec.duration_s = 25.0;
  const Aggregate agg = run_repeated(spec, w, 2);
  EXPECT_EQ(agg.runs.size(), 2u);
  EXPECT_EQ(agg.final_accuracy.count(), 2u);
  EXPECT_EQ(agg.system, "baseline");
}

TEST(RunExperiment, DeterministicForSameSpec) {
  const Workload w = tiny_cpu_workload();
  RunSpec spec;
  spec.system = "gaia";
  spec.environment = "Hetero CPU A";
  spec.duration_s = 30.0;
  const RunResult a = run_experiment(spec, w);
  const RunResult b = run_experiment(spec, w);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
}

}  // namespace
}  // namespace dlion::exp

// End-to-end tests for the dlion-benchdiff binary (the perf-regression
// gate). The build injects:
//   DLION_BENCHDIFF_BINARY - absolute path to the built tool
//   DLION_REPO_ROOT        - absolute path to the source tree
// Tests shell out to the real executable, exactly as CI's bench-regress
// step does — the gate being relied on is the gate being tested.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#ifndef DLION_BENCHDIFF_BINARY
#error "build must define DLION_BENCHDIFF_BINARY"
#endif
#ifndef DLION_REPO_ROOT
#error "build must define DLION_REPO_ROOT"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

std::string temp_path(const char* name) {
  // Prefix with the test name: under `ctest -j` these tests run as
  // separate concurrent processes and must not clobber each other.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + info->name() + std::string("_") + name;
}

RunResult run_benchdiff(const std::string& args) {
  const std::string out_path = temp_path("benchdiff_out.txt");
  const std::string cmd = std::string("\"") + DLION_BENCHDIFF_BINARY + "\" " +
                          args + " > " + out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  RunResult r;
#if defined(_WIN32)
  r.exit_code = status;
#else
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
  std::ifstream in(out_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  r.output = buf.str();
  return r;
}

std::string write_file(const char* name, const std::string& content) {
  const std::string path = temp_path(name);
  std::ofstream out(path, std::ios::trunc);
  out << content;
  return path;
}

// A miniature bench report in the committed anchors' shape.
std::string report(double msgs_per_sec, int allocs, double gflops,
                   double p99_ms, const char* schema = "dlion-test-v1") {
  std::ostringstream js;
  js << "{\"schema\": \"" << schema << "\", "
     << "\"comm\": {\"msgs_per_sec\": " << msgs_per_sec
     << ", \"allocs_per_msg\": " << allocs << "}, "
     << "\"gemm\": {\"packed_gflops\": " << gflops << "}, "
     << "\"serve\": {\"p99_ms\": " << p99_ms << "}, "
     << "\"timing\": {\"wall_ms\": 123.4}}";
  return js.str();
}

TEST(BenchdiffTool, CommittedAnchorVsItselfPasses) {
  const std::string anchor =
      std::string(DLION_REPO_ROOT) + "/BENCH_hotpath.json";
  const RunResult r = run_benchdiff("\"" + anchor + "\" \"" + anchor + "\"");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 regression(s)"), std::string::npos) << r.output;
}

TEST(BenchdiffTool, TenPercentThroughputRegressionFails) {
  const std::string base = write_file("base.json", report(1000, 5, 50, 2));
  // 12% msgs/s drop: outside the 10% throughput tolerance.
  const std::string cand = write_file("cand.json", report(880, 5, 50, 2));
  const RunResult r = run_benchdiff("\"" + base + "\" \"" + cand + "\"");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("msgs_per_sec"), std::string::npos);
  EXPECT_NE(r.output.find("REGRESS"), std::string::npos);
}

TEST(BenchdiffTool, SmallThroughputDipWithinTolerancePasses) {
  const std::string base = write_file("base.json", report(1000, 5, 50, 2));
  const std::string cand = write_file("cand.json", report(950, 5, 50, 2));
  const RunResult r = run_benchdiff("\"" + base + "\" \"" + cand + "\"");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(BenchdiffTool, SingleExtraAllocFails) {
  // Alloc counters are deterministic, so they get zero slack.
  const std::string base = write_file("base.json", report(1000, 5, 50, 2));
  const std::string cand = write_file("cand.json", report(1000, 6, 50, 2));
  const RunResult r = run_benchdiff("\"" + base + "\" \"" + cand + "\"");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("allocs_per_msg"), std::string::npos);
}

TEST(BenchdiffTool, LatencyRegressionFailsAndImprovementPasses) {
  const std::string base = write_file("base.json", report(1000, 5, 50, 10));
  const std::string worse = write_file("worse.json", report(1000, 5, 50, 12));
  EXPECT_EQ(run_benchdiff("\"" + base + "\" \"" + worse + "\"").exit_code, 1);
  const std::string better = write_file("better.json", report(1000, 5, 50, 5));
  const RunResult r = run_benchdiff("\"" + base + "\" \"" + better + "\"");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("1 improvement(s)"), std::string::npos) << r.output;
}

TEST(BenchdiffTool, LenientTimingsDemotesThroughputButNotAllocs) {
  const std::string base = write_file("base.json", report(1000, 5, 50, 2));
  // Throughput tanks (timing-derived -> demoted), allocs also grow (hard).
  const std::string slow = write_file("slow.json", report(500, 5, 50, 2));
  EXPECT_EQ(run_benchdiff("--lenient-timings \"" + base + "\" \"" + slow +
                          "\"")
                .exit_code,
            0);
  const std::string leaky = write_file("leaky.json", report(500, 9, 50, 2));
  EXPECT_EQ(run_benchdiff("--lenient-timings \"" + base + "\" \"" + leaky +
                          "\"")
                .exit_code,
            1);
}

TEST(BenchdiffTool, SchemaChangeIsExact) {
  const std::string base = write_file("base.json", report(1000, 5, 50, 2));
  const std::string cand =
      write_file("cand.json", report(1000, 5, 50, 2, "dlion-test-v2"));
  const RunResult r = run_benchdiff("\"" + base + "\" \"" + cand + "\"");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("schema"), std::string::npos);
}

TEST(BenchdiffTool, GatedMetricVanishingFails) {
  const std::string base = write_file("base.json", report(1000, 5, 50, 2));
  const std::string cand = write_file(
      "cand.json", "{\"schema\": \"dlion-test-v1\", \"timing\": "
                   "{\"wall_ms\": 99.0}}");
  const RunResult r = run_benchdiff("\"" + base + "\" \"" + cand + "\"");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("(missing)"), std::string::npos);
}

TEST(BenchdiffTool, CustomRulesFileReplacesThePolicy) {
  const std::string base = write_file("base.json", report(1000, 5, 50, 2));
  const std::string cand = write_file("cand.json", report(500, 9, 50, 2));
  // A policy that only gates gflops: the msgs/s and alloc regressions
  // above fall through to the implicit catch-all info rule.
  const std::string rules = write_file("rules.txt",
                                       "# only gate the kernel\n"
                                       "*gflops* higher rel=10\n");
  const RunResult r = run_benchdiff("--rules=" + rules + " \"" + base +
                                    "\" \"" + cand + "\"");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(BenchdiffTool, UsageAndParseErrorsExitTwo) {
  EXPECT_EQ(run_benchdiff("").exit_code, 2);
  EXPECT_EQ(run_benchdiff("one.json").exit_code, 2);
  const std::string bad = write_file("bad.json", "{not json");
  const std::string good = write_file("good.json", report(1, 1, 1, 1));
  EXPECT_EQ(run_benchdiff("\"" + bad + "\" \"" + good + "\"").exit_code, 2);
}

}  // namespace

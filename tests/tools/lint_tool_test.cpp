// End-to-end tests for the dlion-lint binary. The build injects:
//   DLION_LINT_BINARY - absolute path to the built linter
//   DLION_REPO_ROOT   - absolute path to the source tree
// Tests shell out to the real executable: the gate CI relies on is the gate
// being tested, not a reimplementation of its rules.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#ifndef DLION_LINT_BINARY
#error "build must define DLION_LINT_BINARY"
#endif
#ifndef DLION_REPO_ROOT
#error "build must define DLION_REPO_ROOT"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

std::string temp_path(const char* name) {
  // Prefix with the test name: gtest_discover_tests runs each TEST as its
  // own ctest entry, so under `ctest -j` two of these processes can run
  // concurrently and must not clobber each other's scratch files.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + info->name() + std::string("_") + name;
}

RunResult run_lint(const std::string& args) {
  const std::string out_path = temp_path("dlion_lint_out.txt");
  const std::string cmd = std::string("\"") + DLION_LINT_BINARY + "\" " +
                          args + " > " + out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  RunResult r;
#if defined(_WIN32)
  r.exit_code = status;
#else
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
  std::ifstream in(out_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  r.output = buf.str();
  return r;
}

std::string fixture_dir() {
  return std::string(DLION_REPO_ROOT) + "/tests/tools/fixture";
}

TEST(LintToolTest, ProductionTreeIsClean) {
  const std::string root(DLION_REPO_ROOT);
  const RunResult r = run_lint("--root " + root + " --allowlist " + root +
                               "/tools/lint/allowlist.txt " + root + "/src " +
                               root + "/bench " + root + "/tools " + root +
                               "/examples");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("files clean"), std::string::npos) << r.output;
}

TEST(LintToolTest, FixtureFailsWithDiagnosticsAtKnownLines) {
  const RunResult r = run_lint("--root " + fixture_dir() + " " + fixture_dir());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // One assertion per rule: exact file:line plus the rule tag.
  const struct {
    const char* loc;
    const char* rule;
  } expected[] = {
      {"bad_nondet.cpp:18", "dlion-nondet-unordered-iteration"},
      {"bad_nondet.cpp:24", "dlion-nondet-entropy"},
      {"bad_nondet.cpp:25", "dlion-nondet-entropy"},
      {"bad_nondet.cpp:26", "dlion-nondet-entropy"},
      {"bad_nondet.cpp:30", "dlion-nondet-pointer-key"},
      {"bad_nondet.cpp:33", "dlion-nondet-float-accumulate"},
      {"bad_nondet.cpp:44", "dlion-missing-override"},
      {"bad_message.h:10", "dlion-uninit-pod"},
      {"bad_message.h:13", "dlion-uninit-pod"},
      {"comm/bad_payload.h:11", "dlion-owned-payload"},
      {"comm/bad_payload.h:12", "dlion-owned-payload"},
      {"comm/bad_payload.h:16", "dlion-owned-payload"},
      {"comm/bad_payload.h:17", "dlion-owned-payload"},
  };
  for (const auto& e : expected) {
    EXPECT_NE(r.output.find(e.loc), std::string::npos)
        << "missing " << e.loc << " in:\n" << r.output;
    EXPECT_NE(r.output.find(e.rule), std::string::npos)
        << "missing " << e.rule << " in:\n" << r.output;
  }
  // The clean fixture must not be flagged at all.
  EXPECT_EQ(r.output.find("good_clean.cpp:"), std::string::npos) << r.output;
  // The codec-boundary escape hatch suppresses the owned-payload rule.
  EXPECT_EQ(r.output.find("bad_payload.h:22"), std::string::npos) << r.output;
}

TEST(LintToolTest, JsonReportIsWellFormedAndCounted) {
  const std::string json_path = temp_path("dlion_lint_report.json");
  const RunResult r = run_lint("--root " + fixture_dir() + " --json " +
                               json_path + " " + fixture_dir());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  std::ifstream in(json_path);
  ASSERT_TRUE(in.good()) << "missing JSON report at " << json_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"diagnostics\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"dlion-nondet-entropy\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"file\": \"bad_nondet.cpp\""), std::string::npos)
      << json;
}

TEST(LintToolTest, JsonReportIsByteStableAcrossRuns) {
  const std::string a_path = temp_path("dlion_lint_a.json");
  const std::string b_path = temp_path("dlion_lint_b.json");
  run_lint("--root " + fixture_dir() + " --json " + a_path + " " +
           fixture_dir());
  run_lint("--root " + fixture_dir() + " --json " + b_path + " " +
           fixture_dir());
  std::ifstream fa(a_path), fb(b_path);
  std::ostringstream sa, sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  ASSERT_FALSE(sa.str().empty());
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(LintToolTest, AllowlistSuppressesByRuleAndPath) {
  const std::string allow_path = temp_path("dlion_lint_allow.txt");
  {
    std::ofstream allow(allow_path);
    allow << "# suppress everything except the entropy rule in the fixture\n";
    allow << "dlion-nondet-unordered-iteration bad_nondet.cpp\n";
    allow << "dlion-nondet-pointer-key bad_nondet.cpp\n";
    allow << "dlion-nondet-float-accumulate bad_nondet.cpp\n";
    allow << "dlion-missing-override bad_nondet.cpp\n";
    allow << "* bad_message.h\n";
  }
  const RunResult r = run_lint("--root " + fixture_dir() + " --allowlist " +
                               allow_path + " " + fixture_dir());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("dlion-nondet-entropy"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("dlion-nondet-pointer-key"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("bad_message.h"), std::string::npos) << r.output;
}

TEST(LintToolTest, UnknownPathExitsWithUsageError) {
  const RunResult r = run_lint("/nonexistent/definitely_missing_dir_42");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

}  // namespace

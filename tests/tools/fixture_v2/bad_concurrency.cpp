// Firing fixture for the v2 semantic rules (concurrency family). Each
// marked line must produce exactly the diagnostic named in the comment;
// lint_v2_test.cpp asserts the file:line pairs.
#include <atomic>
#include <mutex>
#include <thread>

#include "common/annotations.h"
#include "common/mutex.h"

namespace fixture {

class BadLocks {
 public:
  void touch() {
    guard_.lock();  // line 16: dlion-lock-no-raii
    ++count_;
    guard_.unlock();  // line 18: dlion-lock-no-raii
  }

 private:
  std::mutex legacy_;  // line 22: dlion-unannotated-mutex (std family)
  dlion::common::Mutex guard_;  // line 23: dlion-unannotated-mutex (guards nothing)
  int count_ = 0;
};

class BadAtomics {
 public:
  void bump() {
    hits_.fetch_add(1);  // line 30: dlion-atomic-rmw-order (defaulted seq_cst)
    mode_.exchange(2, std::memory_order_acquire);  // line 31: dlion-atomic-rmw-order
  }

 private:
  std::atomic<int> hits_{0};
  std::atomic<int> mode_{0};
};

inline void spawn_worker() {
  std::thread worker([] {});  // line 40: dlion-raw-thread
  worker.detach();  // line 41: dlion-raw-thread (detach)
}

}  // namespace fixture

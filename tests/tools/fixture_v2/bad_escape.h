// Firing fixture for dlion-payload-escape: arena-backed payload views in
// static storage, and raw view pointers captured into members.
#pragma once

#include "comm/payload.h"

namespace fixture {

static comm::Payload<float> g_cached_weights;  // line 9: dlion-payload-escape

comm::WeightPayload g_last_update;  // line 11: dlion-payload-escape

class ViewHolder {
 public:
  void capture(const comm::Payload<float>& p) {
    view_ = p.data();  // line 16: dlion-payload-escape
  }
  void capture_span(const comm::Payload<float>& p) {
    this->span = p.span();  // line 19: dlion-payload-escape
  }

 private:
  const float* view_ = nullptr;
  int span = 0;  // stand-in member; type is irrelevant to the rule
};

}  // namespace fixture

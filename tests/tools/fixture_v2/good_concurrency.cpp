// Non-firing fixture: the blessed spellings of everything the v2 semantic
// rules flag in bad_concurrency.cpp / bad_escape.h. A clean run over this
// file is asserted by lint_v2_test.cpp.
#include <atomic>
#include <thread>

#include "common/annotations.h"
#include "common/mutex.h"
#include "comm/payload.h"

namespace fixture {

// Annotated mutex guarding annotated state, RAII critical sections.
class GoodLocks {
 public:
  void touch() {
    dlion::common::MutexLock lock(mu_);
    ++count_;
  }

 private:
  dlion::common::Mutex mu_;
  int count_ DLION_GUARDED_BY(mu_) = 0;
};

// Relaxed RMW on counters; a justified stronger order carries an inline
// allow; plain loads/stores of any order are not RMW and never flagged.
class GoodAtomics {
 public:
  void bump() {
    hits_.fetch_add(1, std::memory_order_relaxed);
    ready_.store(true, std::memory_order_release);
    publish_.fetch_add(  // dlion-lint: allow(dlion-atomic-rmw-order)
        1, std::memory_order_acq_rel);
  }

 private:
  std::atomic<int> hits_{0};
  std::atomic<bool> ready_{false};
  std::atomic<int> publish_{0};
};

// std::thread::id is pool bookkeeping, not thread construction.
inline bool on_thread(std::thread::id id) {
  return id == std::this_thread::get_id();
}

// Payloads staying on the stack, views consumed in place.
inline float first_element(const comm::Payload<float>& p) {
  const float* local_view = p.data();
  return local_view != nullptr ? local_view[0] : 0.0f;
}

}  // namespace fixture

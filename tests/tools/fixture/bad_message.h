// Lint fixture header (never compiled): the "message" in the filename puts
// it in scope for the dlion-uninit-pod rule, which only audits wire/config
// structs. Line numbers are asserted by lint_tool_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

struct BadWireMessage {
  std::uint32_t from;  // line 10: uninitialized POD member
  std::uint64_t seq = 0;
  std::vector<float> payload;
  double scale;  // line 13: uninitialized POD member
};

// Lint fixture (never compiled): deliberately determinism-clean code plus
// patterns that LOOK like violations but must not be flagged — mentions in
// comments and string literals, membership-only unordered containers, and
// an inline-suppressed line. Expected diagnostics: zero.
#include <fstream>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

// rand() and std::random_device in a comment must not fire.
void checksum_writer(const std::vector<int>& ids) {
  std::ofstream out("artifact.csv");
  out << "time(nullptr) literal in a string is fine\n";
  // Membership-only unordered use: never iterated, so order never leaks.
  std::unordered_set<int> seen;
  for (int id : ids) {          // iterating the *vector*, not the set
    if (seen.insert(id).second) out << id << "\n";
  }
  // Sorted container iteration is deterministic.
  std::map<std::string, int> by_name;
  for (const auto& kv : by_name) out << kv.first << "\n";
}

// Inline suppression: acknowledged, reviewed, allowed.
#include <ctime>
long documented_wallclock() {
  return time(nullptr);  // dlion-lint: allow(dlion-nondet-entropy)
}

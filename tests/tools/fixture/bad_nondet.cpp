// Lint fixture: every block below violates exactly one dlion-lint rule.
// This file is test DATA - it is never compiled into any target. Line
// numbers are asserted by tests/tools/lint_tool_test.cpp; if you edit this
// file, update the expected lines there.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <numeric>
#include <random>
#include <unordered_map>
#include <vector>

void write_report() {
  std::ofstream out("report.json");  // marks this TU as an artifact writer
  std::unordered_map<int, int> counts;
  for (const auto& kv : counts) {  // line 18: unordered iteration
    out << kv.first;
  }
}

int entropy() {
  std::random_device rd;             // line 24: OS entropy
  long t = time(nullptr);            // line 25: wall clock
  return rd() + static_cast<int>(t) + rand();  // line 26: rand()
}

struct Node {};
std::map<const Node*, int> order;    // line 30: pointer-keyed map

float total(const std::vector<float>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0f);  // line 33: float accumulate
}

class Base {
 public:
  virtual ~Base() = default;
  virtual void tick() = 0;
};

class Derived : public Base {
 public:
  virtual void tick();               // line 44: missing override
};

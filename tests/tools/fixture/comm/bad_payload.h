// Lint fixture header (never compiled): lives under a `comm/` directory so
// the dlion-owned-payload rule audits it. Line numbers are asserted by
// lint_tool_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

struct BadDataLaneMessage {
  std::uint32_t var_index = 0;
  std::vector<std::uint32_t> indices;  // line 11: owned payload member
  std::vector<float> values;           // line 12: owned payload member
};

inline void grow(BadDataLaneMessage& m) {
  m.indices.push_back(1);    // line 16: element-wise payload growth
  m.values.push_back(2.0f);  // line 17: element-wise payload growth
}

struct CodecBoundaryScratch {
  // The decode path legitimately materializes owned bytes: escaped inline.
  std::vector<float> decode_scratch;  // dlion-lint: allow(dlion-owned-payload)
};

// dlion-lint v2 tests, in two layers:
//
//  * unit: the lexer and scope model are linked directly (dlion_lint_core)
//    and probed with golden token streams — the lexical corners (raw
//    strings, digraphs, line continuations) that motivated replacing the
//    line-oriented v1 scanner are each pinned here;
//  * end-to-end: the built binary runs over tests/tools/fixture_v2 and the
//    v1 fixture tree, asserting exact file:line diagnostics per semantic
//    rule, byte-identical v1 output against the committed golden
//    transcript, and the stale-allowlist detector.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lexer.h"
#include "scope_model.h"

#ifndef DLION_LINT_BINARY
#error "build must define DLION_LINT_BINARY"
#endif
#ifndef DLION_REPO_ROOT
#error "build must define DLION_REPO_ROOT"
#endif

namespace {

using dlion_lint::Token;
using dlion_lint::TokenKind;

// --- lexer ----------------------------------------------------------------

std::vector<Token> lex_str(const std::string& s) { return dlion_lint::lex(s); }

const Token* find_token(const std::vector<Token>& toks,
                        const std::string& text) {
  for (const Token& t : toks) {
    if (t.text == text) return &t;
  }
  return nullptr;
}

TEST(LintLexerTest, LineContinuationSplicesAndKeepsStartingLine) {
  const auto toks = lex_str("int a\\\nbc = 1;\nint second;\n");
  const Token* abc = find_token(toks, "abc");
  ASSERT_NE(abc, nullptr) << "a\\\\\\nbc must splice to one identifier";
  EXPECT_EQ(abc->kind, TokenKind::kIdentifier);
  EXPECT_EQ(abc->line, 1) << "spliced token belongs to its starting line";
  const Token* second = find_token(toks, "second");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->line, 3) << "physical line numbering resumes after splice";
}

TEST(LintLexerTest, RawStringKeepsBackslashNewlineVerbatim) {
  // Inside a raw string, phase-2 splicing is reverted: the backslash and
  // newline are literal content, not a continuation.
  const std::string src = "auto s = R\"x(line1\\\nline2)x\";\nint after;\n";
  const auto toks = lex_str(src);
  const Token* str = nullptr;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kString) str = &t;
  }
  ASSERT_NE(str, nullptr);
  EXPECT_NE(str->text.find("line1\\\nline2"), std::string::npos)
      << "raw string mangled: " << str->text;
  EXPECT_EQ(str->line, 1);
  const Token* after = find_token(toks, "after");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->line, 3);
}

TEST(LintLexerTest, RawStringArbitraryDelimiterAndEmbeddedQuote) {
  const auto toks = lex_str("auto j = R\"json({\"k\": \")\"})json\";");
  const Token* str = nullptr;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kString) str = &t;
  }
  ASSERT_NE(str, nullptr);
  EXPECT_NE(str->text.find(")json\""), std::string::npos);
  // The embedded braces/quotes must not leak punctuation tokens.
  EXPECT_EQ(find_token(toks, "k"), nullptr);
  EXPECT_EQ(find_token(toks, "{"), nullptr);
}

TEST(LintLexerTest, DigraphsNormalizeToPrimarySpelling) {
  const auto toks = lex_str("int a<:0:> = <%1%>;\n");
  std::string puncts;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kPunct) puncts += t.text;
  }
  EXPECT_EQ(puncts, "[]={};") << "digraphs <: :> <% %> must normalize";
}

TEST(LintLexerTest, LessColonColonDisambiguation) {
  // [lex.pptoken]: vector<::ns::T> lexes as '<' '::', not '[' ':'.
  const auto toks = lex_str("std::vector<::fixture::T> v;");
  std::vector<std::string> texts;
  for (const Token& t : toks) texts.push_back(t.text);
  const std::vector<std::string> expected = {
      "std", "::", "vector", "<", "::", "fixture", "::", "T", ">", "v", ";"};
  EXPECT_EQ(texts, expected);
}

TEST(LintLexerTest, DirectiveSwallowsMultiLineMacroBody) {
  const auto toks =
      lex_str("#define FOO(x) \\\n  ((x) + 1)\nint y;\n");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokenKind::kDirective);
  EXPECT_EQ(toks[0].text, "define");
  EXPECT_EQ(toks[0].line, 1);
  // The macro body never reads as code: next token is the declaration.
  EXPECT_EQ(toks[1].text, "int");
  EXPECT_EQ(toks[1].line, 3);
}

TEST(LintLexerTest, CommentsAndCharLiteralsProduceNoTokens) {
  const auto toks = lex_str(
      "// std::mutex in a comment\n/* std::thread */ char c = '\\n';");
  EXPECT_EQ(find_token(toks, "mutex"), nullptr);
  EXPECT_EQ(find_token(toks, "thread"), nullptr);
  const Token* lit = nullptr;
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kChar) lit = &t;
  }
  ASSERT_NE(lit, nullptr);
  EXPECT_EQ(lit->text, "'\\n'");
}

// --- scope model ----------------------------------------------------------

TEST(LintScopeModelTest, MembersAnnotationsAndParamsResolve) {
  const std::string src =
      "namespace n {\n"
      "class Pool {\n"
      " public:\n"
      "  void run(std::mutex& park, int n);\n"
      " private:\n"
      "  common::Mutex mu_;\n"
      "  std::queue<std::function<void()>> tasks_ DLION_GUARDED_BY(mu_);\n"
      "  std::atomic<std::size_t> seq_{0};\n"
      "};\n"
      "void n::Pool::run(std::mutex& park, int n) { park.lock(); }\n"
      "}\n";
  const auto model = dlion_lint::build_scope_model(dlion_lint::lex(src));
  ASSERT_EQ(model.classes.size(), 1u);
  const auto& pool = model.classes[0];
  EXPECT_EQ(pool.name, "Pool");
  ASSERT_EQ(pool.members.size(), 3u);
  EXPECT_EQ(pool.members[0].name, "mu_");
  EXPECT_TRUE(dlion_lint::is_mutex_type(pool.members[0].type))
      << pool.members[0].type;
  EXPECT_EQ(pool.members[1].name, "tasks_");
  ASSERT_EQ(pool.members[1].annotations.size(), 1u);
  EXPECT_EQ(pool.members[1].annotations[0], "DLION_GUARDED_BY(mu_)");
  // Brace-initialized member still models (the {0} is an initializer,
  // not a scope).
  EXPECT_EQ(pool.members[2].name, "seq_");
  EXPECT_TRUE(dlion_lint::is_atomic_type(pool.members[2].type))
      << pool.members[2].type;
  // Function parameters resolve like locals.
  EXPECT_TRUE(dlion_lint::is_std_mutex_type(model.type_of("park")));
}

TEST(LintScopeModelTest, StaticAndNamespaceScopePayloadsAreGlobals) {
  const std::string src =
      "namespace f {\n"
      "comm::WeightPayload g_update;\n"
      "void stage() { static comm::Payload<float> cache; }\n"
      "}\n";
  const auto model = dlion_lint::build_scope_model(dlion_lint::lex(src));
  ASSERT_EQ(model.globals.size(), 2u);
  EXPECT_TRUE(dlion_lint::is_payload_type(model.globals[0].type));
  EXPECT_TRUE(model.globals[1].is_static);
  EXPECT_TRUE(dlion_lint::is_payload_type(model.globals[1].type));
}

// --- end-to-end against the built binary ----------------------------------

struct RunResult {
  int exit_code = -1;
  std::string output;
};

std::string temp_path(const char* name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + info->name() + std::string("_") + name;
}

RunResult run_lint(const std::string& args) {
  const std::string out_path = temp_path("dlion_lint_out.txt");
  const std::string cmd = std::string("\"") + DLION_LINT_BINARY + "\" " +
                          args + " > " + out_path + " 2>&1";
  const int status = std::system(cmd.c_str());
  RunResult r;
#if defined(_WIN32)
  r.exit_code = status;
#else
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
  std::ifstream in(out_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  r.output = buf.str();
  return r;
}

std::string v1_fixture_dir() {
  return std::string(DLION_REPO_ROOT) + "/tests/tools/fixture";
}
std::string v2_fixture_dir() {
  return std::string(DLION_REPO_ROOT) + "/tests/tools/fixture_v2";
}

TEST(LintV2Test, SemanticRulesFireAtExactFixtureLines) {
  const RunResult r =
      run_lint("--root " + v2_fixture_dir() + " " + v2_fixture_dir());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const struct {
    const char* loc;
    const char* rule;
  } expected[] = {
      {"bad_concurrency.cpp:16", "dlion-lock-no-raii"},
      {"bad_concurrency.cpp:18", "dlion-lock-no-raii"},
      {"bad_concurrency.cpp:22", "dlion-unannotated-mutex"},
      {"bad_concurrency.cpp:23", "dlion-unannotated-mutex"},
      {"bad_concurrency.cpp:30", "dlion-atomic-rmw-order"},
      {"bad_concurrency.cpp:31", "dlion-atomic-rmw-order"},
      {"bad_concurrency.cpp:40", "dlion-raw-thread"},
      {"bad_concurrency.cpp:41", "dlion-raw-thread"},
      {"bad_escape.h:9", "dlion-payload-escape"},
      {"bad_escape.h:11", "dlion-payload-escape"},
      {"bad_escape.h:16", "dlion-payload-escape"},
      {"bad_escape.h:19", "dlion-payload-escape"},
  };
  for (const auto& e : expected) {
    const std::string line = std::string(e.loc) + ": error: ";
    EXPECT_NE(r.output.find(line), std::string::npos)
        << "missing " << e.loc << " in:\n" << r.output;
    EXPECT_NE(r.output.find(e.rule), std::string::npos)
        << "missing " << e.rule << " in:\n" << r.output;
  }
  // The blessed spellings (including the inline-allowed acq_rel RMW) stay
  // silent.
  EXPECT_EQ(r.output.find("good_concurrency.cpp:"), std::string::npos)
      << r.output;
}

TEST(LintV2Test, V1FixtureOutputMatchesCommittedGoldenByteForByte) {
  std::ifstream golden_in(v1_fixture_dir() + "/expected_v1_output.txt");
  ASSERT_TRUE(golden_in.good()) << "missing committed golden transcript";
  std::ostringstream golden;
  golden << golden_in.rdbuf();

  // Default (v2) mode: the semantic rules are active but silent on the v1
  // fixtures, so output is byte-identical to the v1 linter.
  const RunResult full =
      run_lint("--root " + v1_fixture_dir() + " " + v1_fixture_dir());
  EXPECT_EQ(full.exit_code, 1);
  EXPECT_EQ(full.output, golden.str());

  // Explicit v1 compatibility mode must match too.
  const RunResult text_only = run_lint("--root " + v1_fixture_dir() +
                                       " --text-rules-only " +
                                       v1_fixture_dir());
  EXPECT_EQ(text_only.exit_code, 1);
  EXPECT_EQ(text_only.output, golden.str());
}

TEST(LintV2Test, StaleAllowlistEntryIsReportedAndGateable) {
  const std::string allow_path = temp_path("stale_allow.txt");
  {
    std::ofstream allow(allow_path);
    allow << "# live: suppresses real diagnostics in the fixture\n";
    allow << "dlion-nondet-entropy bad_nondet.cpp\n";
    allow << "# stale: the rule never fires in this file\n";
    allow << "dlion-raw-thread bad_nondet.cpp\n";
    allow << "# out of scope: matches no scanned file, must be skipped\n";
    allow << "dlion-nondet-entropy bench/\n";
  }
  const RunResult r = run_lint("--root " + v1_fixture_dir() +
                               " --allowlist " + allow_path + " " +
                               v1_fixture_dir());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("dlion-stale-allowlist"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(":4: error:"), std::string::npos)
      << "stale diagnostic must point at the allowlist entry line\n"
      << r.output;
  EXPECT_NE(r.output.find("dlion-raw-thread bad_nondet.cpp"),
            std::string::npos)
      << r.output;
  // The live and out-of-scope entries are not reported.
  EXPECT_EQ(r.output.find("'dlion-nondet-entropy bad_nondet.cpp'"),
            std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("'dlion-nondet-entropy bench/'"),
            std::string::npos)
      << r.output;

  const RunResult off = run_lint("--root " + v1_fixture_dir() +
                                 " --allowlist " + allow_path +
                                 " --no-stale-check " + v1_fixture_dir());
  EXPECT_EQ(off.output.find("dlion-stale-allowlist"), std::string::npos)
      << off.output;
}

TEST(LintV2Test, ProductionTreeIsCleanUnderSemanticRules) {
  const std::string root(DLION_REPO_ROOT);
  const RunResult r = run_lint("--root " + root + " --allowlist " + root +
                               "/tools/lint/allowlist.txt " + root + "/src " +
                               root + "/bench " + root + "/tools " + root +
                               "/examples");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("files clean"), std::string::npos) << r.output;
}

}  // namespace

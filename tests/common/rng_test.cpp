#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dlion::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexStaysBelowBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(42);
  const auto perm = rng.permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(42);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.fork();
  // The child stream should not be identical to the parent's continuation.
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.next() != child.next()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(SplitMix64, KnownGoodSequenceIsDeterministic) {
  SplitMix64 a(0), b(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace dlion::common

#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dlion::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, big;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) big.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), big.ci95_halfwidth());
}

TEST(LinearFit, ExactLine) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = linear_fit(xs, ys);
  ASSERT_EQ(fit.n, 5u);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(10.0), 21.0, 1e-12);
}

TEST(LinearFit, NoisyLineRecoversSlope) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(0.5 * i + ((i % 2 == 0) ? 0.1 : -0.1));
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 1e-3);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(LinearFit, DegenerateInputsReturnEmptyFit) {
  std::vector<double> one = {1.0};
  EXPECT_EQ(linear_fit(one, one).n, 0u);
  std::vector<double> xs = {2.0, 2.0, 2.0};
  std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_EQ(linear_fit(xs, ys).n, 0u);  // constant x
  std::vector<double> mismatched = {1.0, 2.0};
  EXPECT_EQ(linear_fit(xs, mismatched).n, 0u);
}

TEST(Ewma, FirstValuePassesThrough) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.add(10.0);
  EXPECT_FALSE(e.empty());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e(0.3);
  e.add(0.0);
  for (int i = 0; i < 100; ++i) e.add(4.0);
  EXPECT_NEAR(e.value(), 4.0, 1e-9);
}

TEST(Ewma, AlphaOneKeepsLatest) {
  Ewma e(1.0);
  e.add(1.0);
  e.add(7.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

TEST(Ewma, ResetClears) {
  Ewma e(0.5);
  e.add(3.0);
  e.reset();
  EXPECT_TRUE(e.empty());
}

TEST(PopulationStddev, KnownValues) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(population_stddev(xs), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean_of(xs), 5.0);
}

TEST(PopulationStddev, EmptyAndConstant) {
  EXPECT_EQ(population_stddev({}), 0.0);
  std::vector<double> same = {3, 3, 3};
  EXPECT_EQ(population_stddev(same), 0.0);
}

}  // namespace
}  // namespace dlion::common

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/units.h"

namespace dlion::common {
namespace {

TEST(Units, TransferSeconds) {
  // 1 MB over 8 Mbps = 1 s.
  EXPECT_DOUBLE_EQ(transfer_seconds(1'000'000, 8.0), 1.0);
  // 5 MB over 1 Gbps = 40 ms.
  EXPECT_DOUBLE_EQ(transfer_seconds(5'000'000, 1000.0), 0.04);
}

TEST(Units, ZeroBandwidthIsUnreachable) {
  EXPECT_GT(transfer_seconds(1, 0.0), 1e15);
  EXPECT_GT(transfer_seconds(1, -5.0), 1e15);
}

TEST(Units, SizeHelpers) {
  EXPECT_EQ(kib(2), 2048u);
  EXPECT_EQ(mib(1), 1048576u);
  EXPECT_EQ(mb(5), 5'000'000u);
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kWarn);  // fallback
}

TEST(Logging, SetLevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Logging, MacroCompilesAndRespectsLevel) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  // Should not crash and should be filtered (no observable output check
  // here; the point is the streaming path executes).
  DLION_DEBUG << "hidden " << 42;
  DLION_ERROR << "visible-at-error " << 3.14;
  set_log_level(original);
}

}  // namespace
}  // namespace dlion::common

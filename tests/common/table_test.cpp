#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dlion::common {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"system", "accuracy"});
  t.row().cell("dlion").cell(0.7156, 3);
  t.row().cell("baseline").cell(0.31, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("system"), std::string::npos);
  EXPECT_NE(out.find("dlion"), std::string::npos);
  EXPECT_NE(out.find("0.716"), std::string::npos);
  EXPECT_NE(out.find("0.31"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell(1).cell(2);
  t.row().cell("x").cell("y");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\nx,y\n");
}

TEST(Table, NumRows) {
  Table t({"h"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().cell("v");
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, IntegerCells) {
  Table t({"n"});
  t.row().cell(static_cast<std::size_t>(12345));
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("12345"), std::string::npos);
}

TEST(Formatting, Seconds) { EXPECT_EQ(format_seconds(12.34), "12.3s"); }

TEST(Formatting, Percent) {
  EXPECT_EQ(format_percent(0.715), "71.5%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace dlion::common

// Tests for the contract-invariant macros in common/check.h.
//
// The default failure mode (abort) is untestable without death tests, so
// every test here flips the process into throw mode via ScopedContractThrow
// and inspects the ContractViolation it produces.

#include "common/check.h"

#include <string>

#include <gtest/gtest.h>

namespace dlion::common {
namespace {

TEST(CheckTest, PassingAssertHasNoEffect) {
  ScopedContractThrow guard;
  EXPECT_NO_THROW(DLION_ASSERT(1 + 1 == 2));
  EXPECT_NO_THROW(DLION_ASSERT(true, "never shown"));
}

TEST(CheckTest, FailingAssertThrowsInThrowMode) {
  ScopedContractThrow guard;
  EXPECT_THROW(DLION_ASSERT(false), ContractViolation);
}

TEST(CheckTest, MessageCarriesFileLineExprAndDetail) {
  ScopedContractThrow guard;
  try {
    DLION_ASSERT(2 < 1, "custom detail 42");
    FAIL() << "DLION_ASSERT did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("DLION_ASSERT"), std::string::npos) << what;
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("custom detail 42"), std::string::npos) << what;
  }
}

TEST(CheckTest, ScopedThrowRestoresPreviousMode) {
  ASSERT_EQ(contract_failure_mode(), ContractFailureMode::kAbort);
  {
    ScopedContractThrow guard;
    EXPECT_EQ(contract_failure_mode(), ContractFailureMode::kThrow);
  }
  EXPECT_EQ(contract_failure_mode(), ContractFailureMode::kAbort);
}

TEST(CheckTest, AssertConditionIsNotEvaluatedTwice) {
  ScopedContractThrow guard;
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return true;
  };
  DLION_ASSERT(count());
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckTest, DcheckMatchesBuildConfiguration) {
  ScopedContractThrow guard;
  if constexpr (kDchecksEnabled) {
    EXPECT_THROW(DLION_DCHECK(false), ContractViolation);
  } else {
    EXPECT_NO_THROW(DLION_DCHECK(false));
  }
  // Either way a passing DCHECK is silent.
  EXPECT_NO_THROW(DLION_DCHECK(true));
}

TEST(CheckTest, CheckShapeComparesAndReportsBothShapes) {
  ScopedContractThrow guard;
  struct FakeShape {
    int v;
    bool operator==(const FakeShape& o) const { return v == o.v; }
    std::string to_string() const { return "shape<" + std::to_string(v) + ">"; }
  };
  const FakeShape a{3};
  const FakeShape b{3};
  EXPECT_NO_THROW(DLION_CHECK_SHAPE(a, b));
  const FakeShape c{7};
  try {
    DLION_CHECK_SHAPE(a, c);
    FAIL() << "DLION_CHECK_SHAPE did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shape<3>"), std::string::npos) << what;
    EXPECT_NE(what.find("shape<7>"), std::string::npos) << what;
  }
}

TEST(CheckTest, ContractViolationIsALogicError) {
  ScopedContractThrow guard;
  EXPECT_THROW(DLION_ASSERT(false), std::logic_error);
}

}  // namespace
}  // namespace dlion::common

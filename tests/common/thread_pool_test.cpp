#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dlion::common {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ZeroWorkersRunsSerially) {
  // hardware_concurrency may be 1 on this host; an explicit zero-worker
  // pool must still complete all work on the caller.
  ThreadPool pool(0);
  std::vector<int> hits(64, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ThreadPool, SumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<long long> partial(10000);
  pool.parallel_for(0, partial.size(),
                    [&](std::size_t i) {
                      partial[i] = static_cast<long long>(i) * i;
                    },
                    /*grain=*/64);
  long long total = std::accumulate(partial.begin(), partial.end(), 0LL);
  long long expected = 0;
  for (long long i = 0; i < 10000; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPool, GrainLargerThanRangeStillRuns) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 10, [&](std::size_t) { calls.fetch_add(1); },
                    /*grain=*/1000);
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> calls{0};
    pool.parallel_for(0, 50, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 50);
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, WorkerCountMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

}  // namespace
}  // namespace dlion::common

#include "common/scratch.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

namespace dlion::common {
namespace {

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % ScratchArena::kAlignment == 0;
}

TEST(ScratchArena, AllocationsAreAligned) {
  ScratchArena arena;
  for (std::size_t n : {1u, 7u, 63u, 64u, 65u, 1000u}) {
    EXPECT_TRUE(aligned64(arena.alloc_bytes(n))) << n;
  }
  EXPECT_TRUE(aligned64(arena.alloc_floats(33)));
}

TEST(ScratchArena, ScopeRewindReusesMemory) {
  ScratchArena arena;
  float* first = nullptr;
  {
    ScratchArena::Scope scope(arena);
    first = arena.alloc_floats(128);
    first[0] = 42.0f;
  }
  // After the scope dies the same bytes are handed out again - the arena
  // retains capacity instead of freeing.
  const std::size_t cap = arena.capacity_bytes();
  {
    ScratchArena::Scope scope(arena);
    float* again = arena.alloc_floats(128);
    EXPECT_EQ(first, again);
  }
  EXPECT_EQ(cap, arena.capacity_bytes());
  EXPECT_EQ(0u, arena.bytes_in_use());
}

TEST(ScratchArena, NestedScopesRewindToTheirOwnMark) {
  ScratchArena arena;
  ScratchArena::Scope outer(arena);
  arena.alloc_bytes(256);
  const std::size_t outer_used = arena.bytes_in_use();
  {
    ScratchArena::Scope inner(arena);
    arena.alloc_bytes(512);
    EXPECT_GT(arena.bytes_in_use(), outer_used);
  }
  EXPECT_EQ(outer_used, arena.bytes_in_use());
}

TEST(ScratchArena, GrowsAcrossBlocksAndRetainsCapacity) {
  ScratchArena arena;
  {
    ScratchArena::Scope scope(arena);
    // Force growth past the initial block.
    arena.alloc_bytes(ScratchArena::kMinBlockBytes / 2);
    arena.alloc_bytes(ScratchArena::kMinBlockBytes);
    arena.alloc_bytes(4 * ScratchArena::kMinBlockBytes);
  }
  const std::size_t cap = arena.capacity_bytes();
  EXPECT_GE(cap, 5 * ScratchArena::kMinBlockBytes);
  {
    // A second pass of the same sizes must not grow further.
    ScratchArena::Scope scope(arena);
    arena.alloc_bytes(ScratchArena::kMinBlockBytes / 2);
    arena.alloc_bytes(ScratchArena::kMinBlockBytes);
    arena.alloc_bytes(4 * ScratchArena::kMinBlockBytes);
    EXPECT_EQ(cap, arena.capacity_bytes());
  }
}

TEST(ScratchArena, OversizedRequestGetsDedicatedBlock) {
  ScratchArena arena;
  const std::size_t big = 3 * ScratchArena::kMinBlockBytes + 1;
  void* p = arena.alloc_bytes(big);
  EXPECT_TRUE(aligned64(p));
  EXPECT_GE(arena.capacity_bytes(), big);
}

TEST(ScratchArena, TlsIsPerThread) {
  ScratchArena* main_arena = &ScratchArena::tls();
  ScratchArena* other_arena = nullptr;
  std::thread t([&] { other_arena = &ScratchArena::tls(); });
  t.join();
  EXPECT_NE(main_arena, nullptr);
  EXPECT_NE(main_arena, other_arena);
}

TEST(ScratchBuffer, EnsureGrowsOnceThenReuses) {
  ScratchBuffer buf;
  float* p1 = buf.ensure(100);
  EXPECT_TRUE(aligned64(p1));
  p1[99] = 7.0f;
  EXPECT_EQ(100u, buf.size());
  // Same or smaller size: same storage, contents retained.
  float* p2 = buf.ensure(50);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(50u, buf.size());
  float* p3 = buf.ensure(100);
  EXPECT_EQ(p1, p3);
  EXPECT_EQ(7.0f, p3[99]);
  // Growth reallocates.
  const std::size_t cap = buf.capacity();
  (void)buf.ensure(cap + 1);
  EXPECT_GT(buf.capacity(), cap);
}

}  // namespace
}  // namespace dlion::common

#include "common/config.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace dlion::common {
namespace {

Config parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Config::from_args(static_cast<int>(argv.size()), argv.data());
}

TEST(Config, ParsesKeyValueFlags) {
  const Config cfg = parse({"--scale=paper", "--seed=7"});
  EXPECT_EQ(cfg.get_string("scale", "bench"), "paper");
  EXPECT_EQ(cfg.get_int("seed", 0), 7);
}

TEST(Config, BareFlagIsTrue) {
  const Config cfg = parse({"--verbose"});
  EXPECT_TRUE(cfg.get_bool("verbose", false));
}

TEST(Config, MissingKeyUsesFallback) {
  const Config cfg = parse({});
  EXPECT_EQ(cfg.get_string("missing", "fallback"), "fallback");
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(cfg.get_bool("missing", true));
}

TEST(Config, LaterFlagWins) {
  const Config cfg = parse({"--x=1", "--x=2"});
  EXPECT_EQ(cfg.get_int("x", 0), 2);
}

TEST(Config, NonFlagArgumentsIgnored) {
  const Config cfg = parse({"positional", "--k=v"});
  EXPECT_EQ(cfg.get_string("k", ""), "v");
  EXPECT_FALSE(cfg.contains("positional"));
}

TEST(Config, MalformedNumberFallsBack) {
  const Config cfg = parse({"--n=abc"});
  EXPECT_EQ(cfg.get_int("n", 9), 9);
  EXPECT_DOUBLE_EQ(cfg.get_double("n", 1.5), 1.5);
}

TEST(Config, BoolParsingVariants) {
  EXPECT_TRUE(parse({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=on"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=false"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
}

TEST(Config, EnvironmentFallback) {
  ::setenv("DLION_TEST_KEY_XYZ", "from-env", 1);
  const Config cfg = parse({});
  EXPECT_EQ(cfg.get_string("test-key-xyz", ""), "from-env");
  ::unsetenv("DLION_TEST_KEY_XYZ");
}

TEST(Config, FlagOverridesEnvironment) {
  ::setenv("DLION_PRIORITY", "env", 1);
  const Config cfg = parse({"--priority=flag"});
  EXPECT_EQ(cfg.get_string("priority", ""), "flag");
  ::unsetenv("DLION_PRIORITY");
}

TEST(Config, SetAndContains) {
  Config cfg;
  EXPECT_FALSE(cfg.contains("k"));
  cfg.set("k", "v");
  EXPECT_TRUE(cfg.contains("k"));
  EXPECT_EQ(cfg.get_string("k", ""), "v");
}

}  // namespace
}  // namespace dlion::common

// Figure 19: the LBS controller dynamically re-assigns local batch sizes as
// available compute changes. GBS is fixed at 192 (6 x 32); available cores
// follow the paper's four phases:
//   0-100 s : 24/24/24/24/24/24   100-300 s : 24/24/12/12/4/4
//   300-500 s : 12/12/12/12/12/12 500-800 s : 4/4/12/12/24/24
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header("Figure 19: LBS adaptation under dynamic compute",
                      ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);
  // Paper phase boundaries at 100/300/500/800 s scale with the window.
  const double unit = ctx.scale.paper ? 1.0 : ctx.scale.duration_s / 800.0;
  const double duration = 800.0 * unit;

  const std::vector<std::vector<double>> phase_cores = {
      {24, 24, 24, 24, 24, 24},
      {24, 24, 12, 12, 4, 4},
      {12, 12, 12, 12, 12, 12},
      {4, 4, 12, 12, 24, 24}};
  const std::vector<double> boundaries = {0.0, 100.0 * unit, 300.0 * unit,
                                          500.0 * unit};

  core::ClusterSpec spec;
  spec.model = workload.model;
  spec.seed = ctx.scale.seed;
  for (std::size_t w = 0; w < exp::kWorkers; ++w) {
    std::vector<std::pair<double, double>> points;
    for (std::size_t p = 0; p < phase_cores.size(); ++p) {
      points.emplace_back(boundaries[p], phase_cores[p][w]);
    }
    spec.compute.push_back(exp::cpu_cores(sim::Schedule(points)));
  }
  spec.duration_s = duration;
  const systems::SystemSpec system = systems::make_system("dlion");
  spec.strategy_factory = system.strategy_factory;
  core::WorkerOptions options;
  options.learning_rate = workload.learning_rate;
  options.eval_period_iters = ctx.scale.eval_period_iters;
  system.configure(options);
  options.dkt.period_iters = ctx.scale.dkt_period_iters;
  // GBS fixed at 192: the LBS controller alone reacts to compute changes.
  options.gbs_schedule = [](std::uint64_t, double) {
    return std::size_t{192};
  };
  // Re-profile frequently enough to catch the phase changes.
  options.batch_update_period_s = 10.0 * unit;
  spec.worker_options = options;

  core::Cluster cluster(spec, workload.data.train, workload.data.test);
  cluster.run();

  common::Table table({"time(s)", "w0", "w1", "w2", "w3", "w4", "w5",
                       "cores w0..w5"});
  for (double t = 50.0 * unit; t <= duration; t += 50.0 * unit) {
    common::Table& row = table.row();
    row.cell(t, 0);
    for (std::size_t w = 0; w < cluster.size(); ++w) {
      row.cell(cluster.worker(w).lbs_trace().value_at(t), 0);
    }
    std::string cores;
    for (std::size_t w = 0; w < cluster.size(); ++w) {
      if (w > 0) cores += "/";
      cores += std::to_string(static_cast<int>(
          spec.compute[w].units.at(t)));
    }
    row.cell(cores);
  }
  table.print(std::cout);
  std::cout << "\nPaper: LBS is even (32 each) in the homogeneous phases and "
               "proportional to cores in the heterogeneous phases, flipping "
               "when the core assignment flips at the 500 s boundary.\n";
  return 0;
}

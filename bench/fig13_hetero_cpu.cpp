// Figure 13: accuracy after the training window under heterogeneous compute
// (network homogeneous): Homo A, Hetero CPU A (even spread), Hetero CPU B
// (one distinct straggler).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header("Figure 13: heterogeneous compute resources (LAN)",
                      ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);

  common::Table table({"environment", "system", "accuracy", "time-to-70%"});
  for (const std::string env :
       {"Homo A", "Hetero CPU A", "Hetero CPU B"}) {
    for (const std::string& system : systems::comparison_systems()) {
      const exp::RunResult res = exp::run_experiment(
          bench::make_run_spec(ctx.scale, system, env, ctx.scale.duration_s),
          workload);
      table.row()
          .cell(env)
          .cell(system)
          .cell(res.final_accuracy, 3)
          .cell(bench::fmt_time_or_inf(res.time_to_70));
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: DLion's average improvement is 32%/21%/26%/20% over "
               "Baseline/Hop/Gaia/Ako; accuracy is similar across the three "
               "environments (performance is network-bound, not "
               "compute-bound).\n";
  return 0;
}

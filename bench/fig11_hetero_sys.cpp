// Figure 11: model accuracy after the training window for the five systems
// on Homo A, Hetero SYS A and Hetero SYS B (CPU cluster, Cipher/SynthCipher).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header(
      "Figure 11: homogeneous and heterogeneous system environments "
      "(CPU cluster)",
      ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);

  common::Table table({"environment", "system", "accuracy", "ci95",
                       "vs baseline"});
  for (const std::string env :
       {"Homo A", "Hetero SYS A", "Hetero SYS B"}) {
    double baseline_acc = 0.0;
    for (const std::string& system : systems::comparison_systems()) {
      const exp::Aggregate agg = exp::run_repeated(
          bench::make_run_spec(ctx.scale, system, env, ctx.scale.duration_s),
          workload, ctx.scale.repeats);
      bench::maybe_export_curve(ctx, agg.runs.front(),
                                "fig11-" + bench::slug(env) + "-" + system);
      const double acc = agg.final_accuracy.mean();
      if (system == "baseline") baseline_acc = acc;
      table.row()
          .cell(env)
          .cell(system)
          .cell(acc, 3)
          .cell(agg.final_accuracy.ci95_halfwidth(), 3)
          .cell(baseline_acc > 0 ? acc / baseline_acc : 0.0, 2);
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: DLion improves accuracy over Baseline/Hop/Gaia/Ako "
               "by 155%/90%/42%/23% in Hetero SYS A and 199%/84%/38%/22% in "
               "Hetero SYS B; it also wins in Homo A (32%/23%/26%/22%).\n";
  return 0;
}

// Observability overhead bench: runs the same 6-worker DLion simulation
// three ways -- no observer attached, observer attached but runtime-disabled,
// observer enabled -- and reports the wall-clock cost of instrumentation.
//
// The three configurations must produce bit-identical simulation results
// (iterations, bytes, accuracy): recording never draws randomness and never
// schedules events, so this bench doubles as a determinism check. With
// --csv-dir=<dir> the enabled run's artifacts (Chrome trace, metrics
// JSON/CSV, telemetry summary) are exported for inspection.
//
// Usage: obs_overhead [--scale=bench|paper] [--env="Hetero SYS A"]
//                     [--timing-reps=5] [--csv-dir=out]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "obs/obs.h"

namespace {

using namespace dlion;

struct Timed {
  exp::RunResult result;
  double best_ms = 0.0;
  std::uint64_t trace_events = 0;
  std::size_t metric_series = 0;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Run `reps` times, keep the fastest wall time (per-config fresh observer
/// so the tracer never accumulates across reps).
template <typename MakeObs>
Timed run_config(const exp::RunSpec& base, const exp::Workload& workload,
                 int reps, MakeObs&& make_obs) {
  Timed out;
  out.best_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    exp::RunSpec spec = base;
    std::unique_ptr<obs::Observability> o = make_obs();
    spec.obs = o.get();
    const auto t0 = std::chrono::steady_clock::now();
    exp::RunResult result = exp::run_experiment(spec, workload);
    const double ms = ms_since(t0);
    if (ms < out.best_ms) out.best_ms = ms;
    if (o != nullptr) {
      out.trace_events = o->tracer().event_count();
      out.metric_series = o->metrics().size();
    }
    out.result = std::move(result);
  }
  return out;
}

bool same_results(const exp::RunResult& a, const exp::RunResult& b) {
  return a.total_iterations == b.total_iterations &&
         a.total_bytes == b.total_bytes &&
         a.final_accuracy == b.final_accuracy &&
         a.best_accuracy == b.best_accuracy &&
         a.messages_dropped == b.messages_dropped;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dlion;
  bench::BenchContext ctx = bench::BenchContext::from_args(argc, argv);
  const std::string env_name = ctx.config.get_string("env", "Hetero SYS A");
  const int reps =
      static_cast<int>(ctx.config.get_int("timing-reps", 5));

  bench::print_header("Observability overhead (6-worker " + env_name + ")",
                      ctx.scale);

  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);
  exp::RunSpec spec =
      bench::make_run_spec(ctx.scale, "dlion", env_name,
                           ctx.scale.duration_s);

  // 1. Baseline: no observer anywhere in the stack.
  Timed off = run_config(spec, workload, reps,
                         [] { return std::unique_ptr<obs::Observability>(); });
  // 2. Attached but runtime-disabled: every record site pays its gate check
  //    (pointer + flag) and nothing else.
  Timed disabled = run_config(spec, workload, reps, [] {
    auto o = std::make_unique<obs::Observability>();
    o->set_enabled(false);
    return o;
  });
  // 3. Fully enabled: counters, histograms, and span tracing all on.
  Timed on = run_config(spec, workload, reps, [] {
    return std::make_unique<obs::Observability>();
  });

  common::Table table({"config", "best wall (ms)", "overhead", "trace events",
                       "metric series"});
  auto pct = [&](double ms) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f%%",
                  off.best_ms > 0.0 ? (ms - off.best_ms) / off.best_ms * 100.0
                                    : 0.0);
    return std::string(buf);
  };
  auto fmt_ms = [](double ms) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
    return std::string(buf);
  };
  table.row()
      .cell("obs off (baseline)")
      .cell(fmt_ms(off.best_ms))
      .cell("--")
      .cell("0")
      .cell("0");
  table.row()
      .cell("obs attached, disabled")
      .cell(fmt_ms(disabled.best_ms))
      .cell(pct(disabled.best_ms))
      .cell("0")
      .cell(disabled.metric_series);
  table.row()
      .cell("obs enabled")
      .cell(fmt_ms(on.best_ms))
      .cell(pct(on.best_ms))
      .cell(std::to_string(on.trace_events))
      .cell(on.metric_series);
  table.print(std::cout);

  const bool identical = same_results(off.result, disabled.result) &&
                         same_results(off.result, on.result);
  std::cout << "\nsimulation results identical across configs: "
            << (identical ? "yes" : "NO -- DETERMINISM VIOLATION") << "\n"
            << "  iterations=" << off.result.total_iterations
            << " bytes=" << off.result.total_bytes
            << " final_acc=" << off.result.final_accuracy << "\n";

  // Telemetry summary from the enabled run (recomputed via RunSpec's
  // collect_telemetry path so the summary code is exercised too).
  {
    exp::RunSpec tspec = spec;
    tspec.collect_telemetry = true;
    exp::RunResult t = exp::run_experiment(tspec, workload);
    if (t.telemetry.collected) {
      std::cout << "\nwhere simulated time went (cluster totals):\n";
      std::printf("  compute  %10.2f s\n", t.telemetry.compute_seconds);
      std::printf("  stall    %10.2f s\n", t.telemetry.stall_seconds);
      std::printf("  dkt pull %10.2f s\n", t.telemetry.dkt_pull_seconds);
      std::printf("  net tx   %10.2f s  (p50=%.4gs p90=%.4gs p99=%.4gs)\n",
                  t.telemetry.net_tx_seconds, t.telemetry.tx_p50_s,
                  t.telemetry.tx_p90_s, t.telemetry.tx_p99_s);
    }
  }

  const std::string dir = ctx.config.get_string("csv-dir", "");
  if (!dir.empty()) {
    // Export artifacts from a fresh enabled run so each file reflects
    // exactly one simulation.
    auto o = std::make_unique<obs::Observability>();
    exp::RunSpec espec = spec;
    espec.obs = o.get();
    exp::RunResult r = exp::run_experiment(espec, workload);
    try {
      exp::write_chrome_trace(o->tracer(), dir + "/obs_trace.json");
      exp::write_metrics_json(o->metrics(), dir + "/obs_metrics.json");
      exp::write_metrics_csv(o->metrics(), dir + "/obs_metrics.csv");
      exp::write_telemetry_json(obs::summarize(*o),
                                dir + "/obs_telemetry.json");
      std::cout << "\n[csv] wrote " << dir
                << "/obs_trace.json (load in Perfetto), obs_metrics.{json,"
                   "csv}, obs_telemetry.json\n";
    } catch (const std::exception& e) {
      std::cerr << "[csv] export failed (" << e.what()
                << ") - does the directory exist?\n";
    }
    (void)r;
  }
  return 0;
}

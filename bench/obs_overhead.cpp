// Observability overhead bench: runs the same 6-worker DLion simulation
// four ways -- no observer attached, observer attached but runtime-disabled,
// enabled without causal tracing, fully enabled (spans + flows + apply
// anchors) -- and reports the wall-clock and allocation cost of each layer.
//
// All four configurations must produce bit-identical simulation results
// (iterations, bytes, accuracy): recording never draws randomness and never
// schedules events, so this bench doubles as a determinism check. With
// --out=PATH a machine-readable BENCH_obs.json is written (fixed key order;
// only the timing fields vary run-to-run -- event counts, metric series,
// and the `identical` flag are deterministic). With --csv-dir=<dir> the
// enabled run's artifacts (Chrome trace, metrics JSON/CSV, telemetry
// summary, critical-path report) are exported for inspection.
//
// With --workers=N the bench instead runs the scale configuration (ROADMAP
// item 1): N workers in micro-clouds of --groups, full observability with a
// streaming Chrome sink, deterministic sampling, window-only retention, and
// per-micro-cloud metric rollups. It reports the trace-memory numbers that
// gate the obs-scale-smoke CI job (admitted/sampled events, retained bytes,
// bytes per retained event, sink checksum, peak RSS) and exits nonzero if
// --max-retained-bytes is exceeded.
//
// Usage: obs_overhead [--scale=bench|paper] [--env="Hetero SYS A"]
//                     [--timing-reps=5] [--out=BENCH_obs.json] [--csv-dir=out]
//        obs_overhead --workers=256 [--groups=8] [--scale-duration=30]
//                     [--max-retained-bytes=N] [--scale-out=PATH]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "obs/critical_path.h"
#include "obs/obs.h"
#include "obs/trace_sink.h"

// Global allocation hook (defines operator new/delete; one TU per binary).
#include "alloc_hook.h"

namespace {

using namespace dlion;

struct Timed {
  exp::RunResult result;
  double best_ms = 0.0;
  std::uint64_t trace_events = 0;
  std::size_t metric_series = 0;
  std::uint64_t allocs = 0;  ///< operator-new calls in the fastest rep
  std::uint64_t alloc_bytes = 0;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// One timed rep of one configuration (fresh observer per rep so the
/// tracer never accumulates across reps). Folds the wall time, allocation
/// counters, and result into `out`, keeping the fastest rep's numbers.
using MakeObs = std::function<std::unique_ptr<obs::Observability>()>;

void run_rep(const exp::RunSpec& base, const exp::Workload& workload,
             const MakeObs& make_obs, int slot, Timed& out) {
  exp::RunSpec spec = base;
  std::unique_ptr<obs::Observability> o = make_obs();
  spec.obs = o.get();
  // One counter slot per configuration: the reps interleave round-robin,
  // so a shared counter would let one config's window bleed into the next.
  benchalloc::start(slot);
  const auto t0 = std::chrono::steady_clock::now();
  exp::RunResult result = exp::run_experiment(spec, workload);
  const double ms = ms_since(t0);
  const benchalloc::Totals totals = benchalloc::stop();
  if (ms < out.best_ms) {
    out.best_ms = ms;
    out.allocs = totals.count;
    out.alloc_bytes = totals.bytes;
  }
  if (o != nullptr) {
    out.trace_events = o->tracer().event_count();
    out.metric_series = o->metrics().size();
  }
  out.result = std::move(result);
}

bool same_results(const exp::RunResult& a, const exp::RunResult& b) {
  return a.total_iterations == b.total_iterations &&
         a.total_bytes == b.total_bytes &&
         a.final_accuracy == b.final_accuracy &&
         a.best_accuracy == b.best_accuracy &&
         a.messages_dropped == b.messages_dropped;
}

std::string fmt_json_double(double v) { return dlion::bench::jnum(v, 3); }

/// Peak resident set size in kB (VmHWM from /proc/self/status); 0 when the
/// platform doesn't expose it. Report-only — RSS depends on the allocator
/// and is never gated.
std::uint64_t peak_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    unsigned long long kb = 0;
    if (std::sscanf(line.c_str(), "VmHWM: %llu kB", &kb) == 1) return kb;
  }
  return 0;
}

/// The --workers=N scale configuration: N workers, full observability,
/// streaming sink + deterministic sampling + window-only retention +
/// per-micro-cloud rollups. Returns the process exit code.
int run_scale(const bench::BenchContext& ctx, std::size_t workers) {
  const std::size_t groups =
      static_cast<std::size_t>(ctx.config.get_int("groups", 8));
  const double dur = ctx.config.get_double("scale-duration", 30.0);
  const std::uint64_t max_retained = static_cast<std::uint64_t>(
      ctx.config.get_int("max-retained-bytes", 0));
  const std::string scale_out = ctx.config.get_string("scale-out", "");

  bench::print_header(
      "Observability at scale (" + std::to_string(workers) + " workers, " +
          std::to_string(groups) + "/micro-cloud)",
      ctx.scale);

  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);
  exp::Environment env = exp::make_scale_environment(workers, groups);
  exp::RunSpec spec = bench::make_run_spec(ctx.scale, "dlion", env.name, dur);
  spec.env_override = std::move(env);

  // Full observability, bounded memory: per-micro-cloud rollups keep series
  // cardinality O(workers / groups); the sampler keeps every 16th worker
  // lane (plus a 64-event head elsewhere and every 64th flow chain) except
  // in the [0.5, 0.6) * duration full-fidelity window, which is retained
  // in memory for critical-path attribution. Everything else streams to
  // the sink and is dropped from storage.
  auto o = std::make_unique<obs::Observability>();
  o->metrics().set_rollup({groups, dur / 10.0});
  obs::TraceSampleConfig sc;
  sc.track_stride = 16;
  sc.head_events_per_track = 64;
  sc.flow_stride = 64;
  sc.full_t0 = 0.5 * dur;
  sc.full_t1 = 0.6 * dur;
  o->tracer().set_sampling(sc);
  o->tracer().set_retain_all(false);
  std::ostringstream stream;
  obs::ChromeStreamSink sink(stream);
  o->tracer().set_sink(&sink);

  spec.obs = o.get();
  benchalloc::start();
  const auto t0 = std::chrono::steady_clock::now();
  exp::RunResult result = exp::run_experiment(spec, workload);
  const double wall_ms = ms_since(t0);
  const benchalloc::Totals totals = benchalloc::stop();
  o->tracer().finish();

  const obs::Tracer& tr = o->tracer();
  const std::uint64_t admitted = tr.admitted_events();
  const std::uint64_t sampled_out = tr.sampled_out_events();
  const std::size_t retained = tr.event_count();
  const std::size_t retained_bytes = tr.retained_bytes();
  const obs::CriticalPathReport report =
      obs::compute_critical_path(o->tracer(), {dur / 10.0});

  common::Table table({"measure", "value"});
  auto row = [&table](const char* k, std::uint64_t v) {
    table.row().cell(k).cell(static_cast<long long>(v));
  };
  row("simulated iterations", result.total_iterations);
  row("events admitted", admitted);
  row("events sampled out", sampled_out);
  row("events retained (full window)", retained);
  row("retained bytes", retained_bytes);
  table.row().cell("bytes / retained event").cell(
      retained > 0 ? static_cast<double>(retained_bytes) /
                         static_cast<double>(retained)
                   : 0.0,
      1);
  row("sink events", sink.events_written());
  row("sink bytes", sink.bytes_written());
  table.row().cell("sink checksum").cell(bench::hex64(sink.checksum()));
  row("metric series (rolled up)", o->metrics().size());
  table.row().cell("critical path valid").cell(report.valid ? "yes" : "NO");
  row("allocs", totals.count);
  row("peak RSS (kB)", peak_rss_kb());
  table.row().cell("wall (ms)").cell(wall_ms, 2);
  table.print(std::cout);
  if (report.valid) {
    std::cout << "\ncritical path: straggler=" << report.straggler
              << " bottleneck=" << report.bottleneck_link << "\n";
  }

  if (!scale_out.empty()) {
    // Everything except wall_ms / allocs / peak_rss_kb is deterministic for
    // a given (workers, groups, duration, seed) — the sink checksum is the
    // cross-thread-count identity fingerprint the CI smoke job compares.
    std::ofstream js(scale_out, std::ios::trunc);
    js << "{\n";
    js << "  \"schema\": \"dlion-obs-scale-v1\",\n";
    js << "  \"bench\": \"obs_overhead\",\n";
    js << "  \"workers\": " << workers << ",\n";
    js << "  \"groups\": " << groups << ",\n";
    js << "  \"duration_s\": " << fmt_json_double(dur) << ",\n";
    js << "  \"iterations\": " << result.total_iterations << ",\n";
    js << "  \"events_admitted\": " << admitted << ",\n";
    js << "  \"events_sampled_out\": " << sampled_out << ",\n";
    js << "  \"retained_events\": " << retained << ",\n";
    js << "  \"retained_bytes\": " << retained_bytes << ",\n";
    js << "  \"sink_events\": " << sink.events_written() << ",\n";
    js << "  \"sink_bytes\": " << sink.bytes_written() << ",\n";
    js << "  \"sink_checksum\": \"" << bench::hex64(sink.checksum())
       << "\",\n";
    js << "  \"metric_series\": " << o->metrics().size() << ",\n";
    js << "  \"critical_path_valid\": " << (report.valid ? "true" : "false")
       << ",\n";
    js << "  \"wall_ms\": " << fmt_json_double(wall_ms) << ",\n";
    js << "  \"allocs\": " << totals.count << ",\n";
    js << "  \"peak_rss_kb\": " << peak_rss_kb() << "\n";
    js << "}\n";
    std::cout << "\n[json] wrote " << scale_out << "\n";
  }

  if (max_retained > 0 && retained_bytes > max_retained) {
    std::cerr << "FAIL: retained trace memory " << retained_bytes
              << " bytes exceeds budget " << max_retained << "\n";
    return 1;
  }
  if (!report.valid) {
    std::cerr << "FAIL: critical path invalid (full-fidelity window "
                 "retained no spans)\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dlion;
  bench::BenchContext ctx = bench::BenchContext::from_args(argc, argv);
  const std::string env_name = ctx.config.get_string("env", "Hetero SYS A");
  const int reps =
      static_cast<int>(ctx.config.get_int("timing-reps", 5));
  const std::string out_path = ctx.config.get_string("out", "");

  const auto workers =
      static_cast<std::size_t>(ctx.config.get_int("workers", 0));
  if (workers > 0) return run_scale(ctx, workers);

  bench::print_header("Observability overhead (6-worker " + env_name + ")",
                      ctx.scale);

  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);
  exp::RunSpec spec =
      bench::make_run_spec(ctx.scale, "dlion", env_name,
                           ctx.scale.duration_s);

  // The four configurations:
  //  1. baseline -- no observer anywhere in the stack;
  //  2. attached but runtime-disabled -- every record site pays its gate
  //     check (pointer + flag) and nothing else;
  //  3. enabled without the causal layer -- counters, histograms, spans,
  //     but no flow events and no zero-duration apply anchors;
  //  4. fully enabled -- spans + flow events + apply anchors (what
  //     compute_critical_path consumes).
  // Reps are interleaved round-robin (rep 0 of each config, then rep 1 of
  // each, ...) so slow drift in machine load biases all configurations
  // equally instead of whichever ran last.
  const MakeObs makers[4] = {
      [] { return std::unique_ptr<obs::Observability>(); },
      [] {
        auto o = std::make_unique<obs::Observability>();
        o->set_enabled(false);
        return o;
      },
      [] {
        auto o = std::make_unique<obs::Observability>();
        o->set_causal(false);
        return o;
      },
      [] { return std::make_unique<obs::Observability>(); },
  };
  Timed timed[4];
  for (Timed& t : timed) t.best_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    for (int c = 0; c < 4; ++c) {
      run_rep(spec, workload, makers[c], c, timed[c]);
    }
  }
  Timed& off = timed[0];
  Timed& disabled = timed[1];
  Timed& plain = timed[2];
  Timed& on = timed[3];

  common::Table table({"config", "best wall (ms)", "overhead", "trace events",
                       "metric series", "allocs"});
  auto pct = [&](double ms) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f%%",
                  off.best_ms > 0.0 ? (ms - off.best_ms) / off.best_ms * 100.0
                                    : 0.0);
    return std::string(buf);
  };
  auto fmt_ms = [](double ms) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", ms);
    return std::string(buf);
  };
  auto add_row = [&](const char* name, const Timed& t, bool baseline) {
    table.row()
        .cell(name)
        .cell(fmt_ms(t.best_ms))
        .cell(baseline ? "--" : pct(t.best_ms))
        .cell(std::to_string(t.trace_events))
        .cell(t.metric_series)
        .cell(std::to_string(t.allocs));
  };
  add_row("obs off (baseline)", off, true);
  add_row("obs attached, disabled", disabled, false);
  add_row("obs enabled, no causal", plain, false);
  add_row("obs enabled + causal", on, false);
  table.print(std::cout);

  const bool identical = same_results(off.result, disabled.result) &&
                         same_results(off.result, plain.result) &&
                         same_results(off.result, on.result);
  std::cout << "\nsimulation results identical across configs: "
            << (identical ? "yes" : "NO -- DETERMINISM VIOLATION") << "\n"
            << "  iterations=" << off.result.total_iterations
            << " bytes=" << off.result.total_bytes
            << " final_acc=" << off.result.final_accuracy << "\n";
  if (on.trace_events > 0) {
    std::printf(
        "allocation cost of recording: %.3f allocs/event "
        "(%llu extra allocs over no-causal, %llu flow+anchor events)\n",
        static_cast<double>(on.allocs > off.allocs ? on.allocs - off.allocs
                                                   : 0) /
            static_cast<double>(on.trace_events),
        static_cast<unsigned long long>(
            on.allocs > plain.allocs ? on.allocs - plain.allocs : 0),
        static_cast<unsigned long long>(
            on.trace_events > plain.trace_events
                ? on.trace_events - plain.trace_events
                : 0));
  }

  // Telemetry summary from the enabled run (recomputed via RunSpec's
  // collect_telemetry path so the summary code is exercised too).
  {
    exp::RunSpec tspec = spec;
    tspec.collect_telemetry = true;
    exp::RunResult t = exp::run_experiment(tspec, workload);
    if (t.telemetry.collected) {
      std::cout << "\nwhere simulated time went (cluster totals):\n";
      std::printf("  compute  %10.2f s\n", t.telemetry.compute_seconds);
      std::printf("  stall    %10.2f s\n", t.telemetry.stall_seconds);
      std::printf("  dkt pull %10.2f s\n", t.telemetry.dkt_pull_seconds);
      std::printf("  net tx   %10.2f s  (p50=%.4gs p90=%.4gs p99=%.4gs)\n",
                  t.telemetry.net_tx_seconds, t.telemetry.tx_p50_s,
                  t.telemetry.tx_p90_s, t.telemetry.tx_p99_s);
    }
  }

  if (!out_path.empty()) {
    // Machine-readable summary, fixed key order. The *_ms fields vary
    // run-to-run; everything else is deterministic for a given scale/env.
    std::ofstream js(out_path, std::ios::trunc);
    js << "{\n";
    js << "  \"schema\": \"dlion-obs-v2\",\n";
    js << "  \"bench\": \"obs_overhead\",\n";
    js << "  \"env\": \"" << env_name << "\",\n";
    js << "  \"scale\": \"" << (ctx.scale.paper ? "paper" : "bench")
       << "\",\n";
    js << "  \"identical_results\": " << (identical ? "true" : "false")
       << ",\n";
    js << "  \"iterations\": " << off.result.total_iterations << ",\n";
    js << "  \"bytes\": " << off.result.total_bytes << ",\n";
    auto cfg = [&](const char* key, const Timed& t, bool last) {
      js << "  \"" << key << "\": {\"wall_ms\": " << fmt_json_double(t.best_ms)
         << ", \"overhead_pct\": "
         << fmt_json_double(off.best_ms > 0.0
                                ? (t.best_ms - off.best_ms) / off.best_ms *
                                      100.0
                                : 0.0)
         << ", \"trace_events\": " << t.trace_events
         << ", \"metric_series\": " << t.metric_series
         << ", \"allocs\": " << t.allocs << "}" << (last ? "\n" : ",\n");
    };
    cfg("off", off, false);
    cfg("disabled", disabled, false);
    cfg("enabled_no_causal", plain, false);
    cfg("enabled_causal", on, true);
    js << "}\n";
    std::cout << "\n[json] wrote " << out_path << "\n";
  }

  const std::string dir = ctx.config.get_string("csv-dir", "");
  if (!dir.empty()) {
    // Export artifacts from a fresh enabled run so each file reflects
    // exactly one simulation.
    auto o = std::make_unique<obs::Observability>();
    exp::RunSpec espec = spec;
    espec.obs = o.get();
    exp::RunResult r = exp::run_experiment(espec, workload);
    try {
      exp::write_chrome_trace(o->tracer(), dir + "/obs_trace.json");
      exp::write_metrics_json(o->metrics(), dir + "/obs_metrics.json");
      exp::write_metrics_csv(o->metrics(), dir + "/obs_metrics.csv");
      exp::write_telemetry_json(obs::summarize(*o),
                                dir + "/obs_telemetry.json");
      const obs::CriticalPathReport report = obs::compute_critical_path(
          o->tracer(), {ctx.scale.duration_s / 10.0});
      exp::write_critical_path_json(report, dir + "/obs_critical_path.json");
      exp::write_critical_path_table(report, dir + "/obs_critical_path.txt");
      std::cout << "\n[csv] wrote " << dir
                << "/obs_trace.json (load in Perfetto), obs_metrics.{json,"
                   "csv}, obs_telemetry.json, obs_critical_path.{json,txt}\n";
    } catch (const std::exception& e) {
      std::cerr << "[csv] export failed (" << e.what()
                << ") - does the directory exist?\n";
    }
    (void)r;
  }
  return 0;
}

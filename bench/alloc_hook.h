// Global allocation hook shared by benches that report allocation counts:
// replaces the global operator new/delete with counting versions. The
// counters are off until enabled, so program startup and untracked phases
// cost one relaxed atomic load per allocation.
//
// IMPORTANT: this header *defines* the replaceable global allocation
// functions (which must not be inline), so include it from exactly ONE
// translation unit per binary -- the bench's main .cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace benchalloc {

/// Benches that interleave several measured configurations (obs_overhead's
/// round-robin reps) give each configuration its own counter slot, so
/// zeroing one configuration's window can never clobber another's totals
/// and a straggling tracked allocation (a worker-thread free-list refill
/// landing around the stop() edge) is charged to the slot that was active,
/// not to whichever configuration starts next.
inline constexpr int kSlots = 8;

struct SlotCounters {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> bytes{0};
};

inline std::atomic<bool> g_track{false};
inline std::atomic<int> g_slot{0};
inline SlotCounters g_slots[kSlots];

inline void note(std::size_t size) {
  if (g_track.load(std::memory_order_relaxed)) {
    SlotCounters& s = g_slots[g_slot.load(std::memory_order_relaxed)];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.bytes.fetch_add(size, std::memory_order_relaxed);
  }
}

inline void* checked_malloc(std::size_t size) {
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  note(size);
  return p;
}

inline void* checked_aligned(std::size_t size, std::size_t align) {
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  note(size);
  return p;
}

/// Zero `slot`'s counters, make it the active slot, and start tracking.
inline void start(int slot = 0) {
  if (slot < 0 || slot >= kSlots) slot = 0;
  g_slot.store(slot);
  g_slots[slot].count.store(0);
  g_slots[slot].bytes.store(0);
  g_track.store(true);
}

struct Totals {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

/// Stop tracking and return what the active slot counted since start().
inline Totals stop() {
  g_track.store(false);
  const SlotCounters& s = g_slots[g_slot.load()];
  return Totals{s.count.load(), s.bytes.load()};
}

/// Read a slot's accumulated totals without changing tracking state.
inline Totals totals(int slot) {
  if (slot < 0 || slot >= kSlots) slot = 0;
  return Totals{g_slots[slot].count.load(), g_slots[slot].bytes.load()};
}

}  // namespace benchalloc

// Replaceable global allocation functions (deliberately not inline; see the
// header comment -- one TU per binary).
void* operator new(std::size_t size) { return benchalloc::checked_malloc(size); }
void* operator new[](std::size_t size) {
  return benchalloc::checked_malloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return benchalloc::checked_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return benchalloc::checked_aligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// Figure 21: highest model accuracy and the training time needed to reach it
// when each system trains until full convergence (Homo A).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header(
      "Figure 21: converged accuracy and time to convergence (Homo A)",
      ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);
  // "Until fully converged": a window well past where the curves flatten.
  const double duration = 2.0 * ctx.scale.duration_s;

  common::Table table({"system", "converged accuracy",
                       "time to convergence"});
  for (const std::string& system : systems::comparison_systems()) {
    const exp::RunResult res = exp::run_experiment(
        bench::make_run_spec(ctx.scale, system, "Homo A", duration),
        workload);
    // Convergence time: first time the curve reaches 99.5% of its maximum.
    const double converge_t =
        res.mean_curve.time_to_reach(0.995 * res.best_accuracy);
    table.row()
        .cell(system)
        .cell(res.best_accuracy, 3)
        .cell(bench::fmt_time_or_inf(converge_t));
  }
  table.print(std::cout);
  std::cout << "\nPaper: DLion reaches the highest converged accuracy "
               "(26%/24%/25%/18% above Baseline/Hop/Gaia/Ako) - DKT "
               "propagates the best weights - with training time 59%/36% "
               "faster than Baseline/Hop and 11%/21% slower than "
               "Gaia/Ako.\n";
  return 0;
}

// Figure 17: standard deviation of model accuracy across the six workers in
// three heterogeneous environments (Hetero SYS B, Hetero NET B, Hetero
// CPU B). DLion's DKT keeps replicas synchronized; Ako's asynchronous
// training shows the largest spread.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header("Figure 17: accuracy deviation across workers",
                      ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);

  common::Table table({"environment", "system", "accuracy stddev",
                       "mean accuracy"});
  for (const std::string env :
       {"Hetero SYS B", "Hetero NET B", "Hetero CPU B"}) {
    for (const std::string& system : systems::comparison_systems()) {
      const exp::RunResult res = exp::run_experiment(
          bench::make_run_spec(ctx.scale, system, env, ctx.scale.duration_s),
          workload);
      table.row()
          .cell(env)
          .cell(system)
          .cell(res.accuracy_stddev, 4)
          .cell(res.final_accuracy, 3);
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: DLion has much smaller deviation than the others "
               "(DKT periodically synchronizes weights); Ako's is the "
               "largest (asynchronous), Hop second (backup workers), Gaia "
               "in between.\n";
  return 0;
}

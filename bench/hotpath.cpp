// Hot-path benchmark: GEMM throughput, training-step latency/allocations,
// Max-N selection throughput, and training determinism checksums.
//
// Emits a machine-readable BENCH_hotpath.json (fixed key order; only the
// timing fields vary run-to-run, the checksum fields are deterministic) so
// CI can track kernel regressions and cross-check bit-determinism across
// DLION_THREADS settings. The `pre_pr` blocks are frozen measurements of
// the pre-blocking kernels on the reference dev container, kept as the
// comparison anchor for the packed-GEMM speedup.
//
// Usage: hotpath [--out=PATH] [--steps=N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "comm/fabric.h"
#include "common/rng.h"
#include "core/gradient_select.h"
#include "core/weighted_update.h"
#include "nn/model_zoo.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "tensor/gemm_ref.h"
#include "tensor/ops.h"

// Global allocation hook (defines operator new/delete; one TU per binary).
#include "alloc_hook.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-`reps` wall time of `fn` in seconds.
template <typename F>
double time_best(int reps, F&& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double s = seconds_since(t0);
    if (s < best) best = s;
  }
  return best;
}

using dlion::bench::fnv1a;
using dlion::bench::hex64;

std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

// Frozen pre-PR measurements (naive per-variant kernels, -O3, single
// thread, reference dev container) used as the speedup anchor.
struct PrePrGemm {
  bool ta, tb;
  double gflops;
};
constexpr PrePrGemm kPrePrGemm[] = {
    {false, false, 9.493},
    {false, true, 3.919},
    {true, false, 10.639},
    {true, true, 1.523},
};
constexpr double kPrePrStepMs = 45.41;
constexpr std::uint64_t kPrePrStepAllocs = 75;
constexpr std::uint64_t kPrePrStepBytes = 11'766'600;

// Frozen pre-PR comm-path measurements (owned-vector payloads: every
// message materialized a fresh copy of the gradient, reference dev
// container). `exchange` = one peer message of the fan-out: produce the
// payload, send it through the fabric, deliver, apply.
constexpr double kPrePrCommMsgsPerSec = 261.0;
constexpr std::uint64_t kPrePrCommAllocsPerExchange = 11;
constexpr std::uint64_t kPrePrCommCopyBytesPerMsg = 4'022'360;
constexpr std::uint64_t kPrePrCommCopiesPerMsg = 10;

struct GemmRow {
  bool ta, tb;
  std::size_t m, n, k;
  double packed_gflops;
  double reference_gflops;
  double max_abs_diff;
  double pre_pr_gflops;  // 0 when no frozen anchor for this shape
};

GemmRow bench_gemm_shape(bool ta, bool tb, std::size_t m, std::size_t n,
                         std::size_t k, dlion::common::Rng& rng) {
  const std::size_t a_elems = m * k, b_elems = k * n, c_elems = m * n;
  std::vector<float> a(a_elems), b(b_elems), c_packed(c_elems),
      c_ref(c_elems);
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1.0, 1.0));

  const double flops = 2.0 * static_cast<double>(m) * n * k;
  // Scale repetitions to the problem so small shapes still time well.
  const int reps = flops > 1e7 ? 10 : 50;

  dlion::tensor::gemm(ta, tb, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
                      c_packed.data());  // warm-up + correctness sample
  dlion::tensor::reference_gemm(ta, tb, m, n, k, 1.0f, a.data(), b.data(),
                                0.0f, c_ref.data());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < c_elems; ++i) {
    const double d = std::abs(static_cast<double>(c_packed[i]) - c_ref[i]);
    if (d > max_diff) max_diff = d;
  }

  const double t_packed = time_best(reps, [&] {
    dlion::tensor::gemm(ta, tb, m, n, k, 1.0f, a.data(), b.data(), 0.0f,
                        c_packed.data());
  });
  const double t_ref = time_best(reps > 10 ? 10 : 3, [&] {
    dlion::tensor::reference_gemm(ta, tb, m, n, k, 1.0f, a.data(), b.data(),
                                  0.0f, c_ref.data());
  });

  GemmRow row{ta, tb, m, n, k, flops / t_packed / 1e9, flops / t_ref / 1e9,
              max_diff, 0.0};
  if (m == 256 && n == 256 && k == 256) {
    for (const auto& p : kPrePrGemm) {
      if (p.ta == ta && p.tb == tb) row.pre_pr_gflops = p.gflops;
    }
  }
  return row;
}

struct StepStats {
  double ms_median;
  std::uint64_t allocs_per_step;
  std::uint64_t bytes_per_step;
};

/// Runs `steps` cipher-CNN training steps (batch 16) and reports the median
/// step latency plus steady-state allocations per step.
StepStats bench_training_step(int steps) {
  dlion::common::Rng rng(42);
  auto bm = dlion::nn::make_cipher_cnn(rng);
  const std::size_t batch = 16;
  dlion::tensor::Tensor images(
      dlion::tensor::Shape{batch, 1, 28, 28});
  std::vector<std::int32_t> labels(batch);
  for (auto& x : images.span()) {
    x = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (auto& l : labels) {
    l = static_cast<std::int32_t>(rng.uniform_int(0, 9));
  }

  // Warm-up: populate scratch buffers / pools so the measured steps see the
  // steady state (the interesting regime for a long training run).
  for (int i = 0; i < 3; ++i) {
    bm.model.compute_gradients(images, labels);
    bm.model.sgd_step(0.01f);
  }

  std::vector<double> ms(static_cast<std::size_t>(steps));
  benchalloc::start();
  for (int i = 0; i < steps; ++i) {
    const auto t0 = Clock::now();
    bm.model.compute_gradients(images, labels);
    bm.model.sgd_step(0.01f);
    ms[static_cast<std::size_t>(i)] = seconds_since(t0) * 1e3;
  }
  const benchalloc::Totals totals = benchalloc::stop();
  const std::uint64_t allocs = totals.count;
  const std::uint64_t bytes = totals.bytes;

  std::sort(ms.begin(), ms.end());
  return {ms[ms.size() / 2], allocs / static_cast<std::uint64_t>(steps),
          bytes / static_cast<std::uint64_t>(steps)};
}

using dlion::bench::weights_checksum;

/// Trains the cipher CNN for `steps` steps from a fixed seed and returns
/// the final weight checksum. Bit-deterministic by design at any thread
/// count; CI compares this value across DLION_THREADS settings.
std::uint64_t train_checksum(int steps, bool parallel_gemm) {
  const bool prev = dlion::tensor::set_gemm_parallel(parallel_gemm);
  dlion::common::Rng rng(7);
  auto bm = dlion::nn::make_cipher_cnn(rng);
  const std::size_t batch = 8;
  dlion::tensor::Tensor images(dlion::tensor::Shape{batch, 1, 28, 28});
  std::vector<std::int32_t> labels(batch);
  for (auto& x : images.span()) {
    x = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (auto& l : labels) {
    l = static_cast<std::int32_t>(rng.uniform_int(0, 9));
  }
  for (int i = 0; i < steps; ++i) {
    bm.model.compute_gradients(images, labels);
    bm.model.sgd_step(0.05f);
  }
  const std::uint64_t h = weights_checksum(bm.model);
  dlion::tensor::set_gemm_parallel(prev);
  return h;
}

struct MaxNStats {
  std::size_t selected;
  double select_gelems;
  double count_gelems;
};

MaxNStats bench_max_n(std::size_t elems, double n) {
  dlion::common::Rng rng(123);
  std::vector<float> grad(elems);
  for (auto& g : grad) g = static_cast<float>(rng.normal(0.0, 1.0));
  const std::span<const float> span(grad);

  auto vg = dlion::core::select_max_n(span, 0, n);  // warm-up + count
  const double t_sel = time_best(5, [&] {
    auto v = dlion::core::select_max_n(span, 0, n);
    if (v.values.empty() && n < 100.0) std::abort();  // keep the work live
  });
  const double t_cnt = time_best(5, [&] {
    if (dlion::core::count_max_n(span, n) != vg.values.size()) std::abort();
  });
  return {vg.values.size(), static_cast<double>(elems) / t_sel / 1e9,
          static_cast<double>(elems) / t_cnt / 1e9};
}

struct CommStats {
  double msgs_per_sec = 0.0;
  std::uint64_t allocs_per_msg_total = 0;      ///< incl. simulator transport
  std::uint64_t allocs_per_msg_transport = 0;  ///< empty-payload baseline
  std::uint64_t allocs_per_exchange = 0;       ///< data-plane = total - transport
  std::uint64_t copies_per_msg = 0;            ///< payload materializations
  std::uint64_t copy_bytes_per_msg = 0;        ///< bytes duplicated per message
  std::uint64_t payload_bytes_per_msg = 0;     ///< gradient bytes carried
};

/// Warm-data-path gradient exchange: one sender fans a dense Max-100 update
/// out to 3 peers over the fabric; each peer applies it on delivery. The
/// alloc budget CI enforces is `allocs_per_exchange` — the data-plane
/// allocations per message over the empty-payload transport baseline, so
/// simulator event-queue overhead (std::function captures, timer nodes)
/// does not mask payload-path regressions.
CommStats bench_comm(int exchanges) {
  constexpr std::size_t kSlots = 4;  // 1 sender + 3 receivers
  dlion::sim::Engine engine;
  dlion::sim::Network net(engine, kSlots);
  dlion::comm::Fabric fabric(net);

  dlion::common::Rng rng(21);
  auto sender = dlion::nn::make_cipher_cnn(rng);
  dlion::tensor::Tensor images(dlion::tensor::Shape{8, 1, 28, 28});
  std::vector<std::int32_t> labels(8);
  for (auto& x : images.span()) {
    x = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (auto& l : labels) {
    l = static_cast<std::int32_t>(rng.uniform_int(0, 9));
  }
  sender.model.compute_gradients(images, labels);

  std::vector<dlion::nn::BuiltModel> receivers;
  receivers.reserve(kSlots - 1);  // handlers capture stable model pointers
  for (std::size_t r = 1; r < kSlots; ++r) {
    dlion::common::Rng peer_rng(21);
    receivers.push_back(dlion::nn::make_cipher_cnn(peer_rng));
    dlion::nn::Model* peer_model = &receivers.back().model;
    fabric.attach(r, [peer_model](std::size_t, dlion::comm::MessagePtr msg) {
      if (const auto* gu =
              std::get_if<dlion::comm::GradientUpdate>(msg.get())) {
        dlion::core::apply_gradient_update(*peer_model, *gu, 0.01f, kSlots,
                                           1.0);
      }
    });
  }

  const std::size_t nvars = sender.model.num_variables();

  // The worker's warm data path in miniature: select each variable's
  // gradient into arena-backed views once per iteration, then every peer's
  // message shares those views (copying a VariableGrad increfs blocks).
  dlion::comm::PayloadArena arena;
  const auto do_exchange = [&](std::uint64_t iter, bool payload) {
    std::vector<dlion::comm::VariableGrad> staged;
    if (payload) {
      dlion::comm::PayloadWriter writer(arena);
      staged.reserve(nvars);
      for (std::size_t v = 0; v < nvars; ++v) {
        staged.push_back(dlion::core::select_max_n(
            sender.model.variables()[v]->grad().span(), v, 100.0, writer));
      }
    }
    for (std::size_t peer = 1; peer < kSlots; ++peer) {
      dlion::comm::GradientUpdate u;
      u.from = 0;
      u.iteration = iter;
      u.lbs = 32;
      if (payload) u.vars = staged;  // shared views, no payload bytes move
      fabric.send(0, peer, std::move(u));
    }
    engine.run();
  };

  for (int i = 0; i < 10; ++i) do_exchange(static_cast<std::uint64_t>(i), true);

  // Actual bytes one message carries, measured on a staged sample.
  std::uint64_t staged_bytes = 0;
  {
    dlion::comm::PayloadWriter writer(arena);
    dlion::comm::GradientUpdate sample;
    for (std::size_t v = 0; v < nvars; ++v) {
      sample.vars.push_back(dlion::core::select_max_n(
          sender.model.variables()[v]->grad().span(), v, 100.0, writer));
    }
    staged_bytes = dlion::comm::payload_bytes(dlion::comm::Message(sample));
  }

  const std::uint64_t msgs =
      static_cast<std::uint64_t>(exchanges) * (kSlots - 1);
  const std::uint64_t copies0 = dlion::comm::payload_copy_count();
  const std::uint64_t copy_bytes0 = dlion::comm::payload_copy_bytes();
  benchalloc::start();
  const auto t0 = Clock::now();
  for (int i = 0; i < exchanges; ++i) {
    do_exchange(static_cast<std::uint64_t>(10 + i), true);
  }
  const double elapsed = seconds_since(t0);
  const benchalloc::Totals data = benchalloc::stop();
  const std::uint64_t copies = dlion::comm::payload_copy_count() - copies0;
  const std::uint64_t copy_bytes =
      dlion::comm::payload_copy_bytes() - copy_bytes0;

  // Transport baseline: same fan-out with empty payloads.
  benchalloc::start();
  for (int i = 0; i < exchanges; ++i) {
    do_exchange(static_cast<std::uint64_t>(10 + exchanges + i), false);
  }
  const benchalloc::Totals transport = benchalloc::stop();

  CommStats s;
  s.msgs_per_sec = static_cast<double>(msgs) / elapsed;
  s.allocs_per_msg_total = data.count / msgs;
  s.allocs_per_msg_transport = transport.count / msgs;
  s.allocs_per_exchange =
      s.allocs_per_msg_total > s.allocs_per_msg_transport
          ? s.allocs_per_msg_total - s.allocs_per_msg_transport
          : 0;
  // Global payload-copy counters: zero on the warm path - every payload is
  // produced once in the arena and shared by view from there.
  s.copies_per_msg = copies / msgs;
  s.copy_bytes_per_msg = copy_bytes / msgs;
  s.payload_bytes_per_msg = staged_bytes;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_hotpath.json";
  int steps = 30;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
    if (arg.rfind("--steps=", 0) == 0) steps = std::atoi(arg.c_str() + 8);
  }
  if (steps < 4) steps = 4;

  const char* threads_env = std::getenv("DLION_THREADS");

  // --- GEMM throughput, single-threaded (the acceptance anchor). ---------
  const bool prev_parallel = dlion::tensor::set_gemm_parallel(false);
  dlion::common::Rng rng(1);
  std::vector<GemmRow> rows;
  for (const auto& p : kPrePrGemm) {
    rows.push_back(bench_gemm_shape(p.ta, p.tb, 256, 256, 256, rng));
  }
  // Training-shaped problems: conv3 of the cipher CNN and the fc1 backward.
  rows.push_back(bench_gemm_shape(false, false, 100, 49, 180, rng));
  rows.push_back(bench_gemm_shape(true, false, 4900, 200, 16, rng));
  dlion::tensor::set_gemm_parallel(prev_parallel);

  // --- Training step latency + allocations (pool default threading). ----
  const StepStats step = bench_training_step(steps);

  // --- Max-N selection throughput. ---------------------------------------
  const MaxNStats maxn = bench_max_n(1'000'000, 1.0);

  // --- Comm data plane: gradient exchange over the fabric. ---------------
  const CommStats comm = bench_comm(100);

  // --- Determinism: serial vs pooled GEMM must agree bitwise. ------------
  const int det_steps = 8;
  const std::uint64_t sum_serial = train_checksum(det_steps, false);
  const std::uint64_t sum_parallel = train_checksum(det_steps, true);
  const bool bitmatch = sum_serial == sum_parallel;

  // --- Emit JSON (fixed key order). ---------------------------------------
  std::string j;
  j += "{\n";
  j += "  \"schema\": \"dlion-hotpath-v1\",\n";
  j += "  \"generated_by\": \"bench/hotpath\",\n";
  j += "  \"gemm_kernel\": \"" + std::string(dlion::tensor::gemm_kernel_name()) +
       "\",\n";
  j += "  \"dlion_threads_env\": \"" +
       std::string(threads_env != nullptr ? threads_env : "") + "\",\n";
  j += "  \"gemm_single_thread\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    j += "    {\"trans_a\": ";
    j += r.ta ? "true" : "false";
    j += ", \"trans_b\": ";
    j += r.tb ? "true" : "false";
    j += ", \"m\": " + std::to_string(r.m) + ", \"n\": " + std::to_string(r.n) +
         ", \"k\": " + std::to_string(r.k);
    j += ", \"packed_gflops\": " + fmt(r.packed_gflops);
    j += ", \"reference_gflops\": " + fmt(r.reference_gflops);
    j += ", \"speedup_vs_reference\": " +
         fmt(r.packed_gflops / r.reference_gflops, 2);
    if (r.pre_pr_gflops > 0.0) {
      j += ", \"pre_pr_gflops\": " + fmt(r.pre_pr_gflops);
      j += ", \"speedup_vs_pre_pr\": " +
           fmt(r.packed_gflops / r.pre_pr_gflops, 2);
    }
    j += ", \"max_abs_diff_vs_reference\": " + fmt(r.max_abs_diff, 8);
    j += "}";
    if (i + 1 < rows.size()) j += ",";
    j += "\n";
  }
  j += "  ],\n";
  j += "  \"training_step\": {\n";
  j += "    \"model\": \"cipher\", \"batch\": 16, \"steps_timed\": " +
       std::to_string(steps) + ",\n";
  j += "    \"ms_per_step_median\": " + fmt(step.ms_median) + ",\n";
  j += "    \"allocs_per_step\": " + std::to_string(step.allocs_per_step) +
       ",\n";
  j += "    \"bytes_per_step\": " + std::to_string(step.bytes_per_step) + ",\n";
  j += "    \"pre_pr\": {\"ms_per_step\": " + fmt(kPrePrStepMs) +
       ", \"allocs_per_step\": " + std::to_string(kPrePrStepAllocs) +
       ", \"bytes_per_step\": " + std::to_string(kPrePrStepBytes) + "}\n";
  j += "  },\n";
  j += "  \"max_n_selection\": {\n";
  j += "    \"elements\": 1000000, \"n_percent\": 1.0, \"selected\": " +
       std::to_string(maxn.selected) + ",\n";
  j += "    \"select_gelems_per_s\": " + fmt(maxn.select_gelems) + ",\n";
  j += "    \"count_gelems_per_s\": " + fmt(maxn.count_gelems) + "\n";
  j += "  },\n";
  j += "  \"comm\": {\n";
  j += "    \"slots\": 4, \"peers\": 3, \"exchanges\": 100,\n";
  j += "    \"msgs_per_sec\": " + fmt(comm.msgs_per_sec, 1) + ",\n";
  j += "    \"payload_bytes_per_msg\": " +
       std::to_string(comm.payload_bytes_per_msg) + ",\n";
  j += "    \"payload_copies_per_msg\": " +
       std::to_string(comm.copies_per_msg) + ",\n";
  j += "    \"payload_copy_bytes_per_msg\": " +
       std::to_string(comm.copy_bytes_per_msg) + ",\n";
  j += "    \"allocs_per_msg_total\": " +
       std::to_string(comm.allocs_per_msg_total) + ",\n";
  j += "    \"allocs_per_msg_transport\": " +
       std::to_string(comm.allocs_per_msg_transport) + ",\n";
  j += "    \"allocs_per_exchange\": " +
       std::to_string(comm.allocs_per_exchange) + ",\n";
  j += "    \"pre_pr\": {\"msgs_per_sec\": " + fmt(kPrePrCommMsgsPerSec, 1) +
       ", \"allocs_per_exchange\": " +
       std::to_string(kPrePrCommAllocsPerExchange) +
       ", \"payload_copies_per_msg\": " +
       std::to_string(kPrePrCommCopiesPerMsg) +
       ", \"payload_copy_bytes_per_msg\": " +
       std::to_string(kPrePrCommCopyBytesPerMsg) + "}\n";
  j += "  },\n";
  j += "  \"determinism\": {\n";
  j += "    \"train_steps\": " + std::to_string(det_steps) + ",\n";
  j += "    \"weights_checksum_serial\": \"" + hex64(sum_serial) + "\",\n";
  j += "    \"weights_checksum_parallel\": \"" + hex64(sum_parallel) + "\",\n";
  j += "    \"serial_parallel_bitmatch\": ";
  j += bitmatch ? "true" : "false";
  j += "\n  }\n";
  j += "}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "hotpath: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(j.data(), 1, j.size(), f);
  std::fclose(f);

  std::printf("%s", j.c_str());
  std::printf("[hotpath] kernel=%s 256^3 nn: %.2f GF/s (%.2fx vs pre-PR)\n",
              dlion::tensor::gemm_kernel_name(), rows[0].packed_gflops,
              rows[0].packed_gflops / kPrePrGemm[0].gflops);
  std::printf("[hotpath] step: %.2f ms, %llu allocs, %llu bytes (pre-PR %.2f "
              "ms, %llu allocs)\n",
              step.ms_median,
              static_cast<unsigned long long>(step.allocs_per_step),
              static_cast<unsigned long long>(step.bytes_per_step),
              kPrePrStepMs,
              static_cast<unsigned long long>(kPrePrStepAllocs));
  std::printf("[hotpath] comm: %.0f msgs/s, %llu payload copies/msg (%llu "
              "bytes), %llu allocs/exchange\n",
              comm.msgs_per_sec,
              static_cast<unsigned long long>(comm.copies_per_msg),
              static_cast<unsigned long long>(comm.copy_bytes_per_msg),
              static_cast<unsigned long long>(comm.allocs_per_exchange));
  std::printf("[hotpath] determinism bitmatch: %s\n",
              bitmatch ? "yes" : "NO");
  std::printf("[hotpath] wrote %s\n", out_path.c_str());
  return bitmatch ? 0 : 2;
}

// Shared boilerplate for the figure/table reproduction binaries.
//
// Every bench accepts --scale=bench|paper plus the individual knobs parsed
// by exp::Scale (see src/exp/experiment.h) and prints the reproduced
// table/figure rows to stdout.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "exp/experiment.h"
#include "exp/report.h"
#include "nn/model.h"
#include "sim/trace.h"

namespace dlion::bench {

/// FNV-1a over a byte range; pass the previous hash to chain ranges.
inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t h = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// FNV-1a over all weight values of the model, in variable order.
inline std::uint64_t weights_checksum(nn::Model& model) {
  std::uint64_t h = 1469598103934665603ULL;
  for (auto* var : model.variables()) {
    const auto s = var->value().span();
    h = fnv1a(s.data(), s.size() * sizeof(float), h);
  }
  return h;
}

inline std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// JSON number with fixed precision; non-finite values become null.
inline std::string jnum(double v, int prec = 4) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// JSON array of [time, value] pairs from a sim trace.
inline std::string jcurve(const sim::Trace& curve) {
  std::string j = "[";
  bool first = true;
  for (const auto& p : curve.points()) {
    if (!first) j += ", ";
    first = false;
    j += "[" + jnum(p.time, 2) + ", " + jnum(p.value) + "]";
  }
  return j + "]";
}

struct BenchContext {
  common::Config config;
  exp::Scale scale;

  static BenchContext from_args(int argc, char** argv) {
    BenchContext ctx;
    ctx.config = common::Config::from_args(argc, argv);
    ctx.scale = exp::Scale::from_config(ctx.config);
    return ctx;
  }
};

inline void print_header(const std::string& title, const exp::Scale& scale) {
  std::cout << "\n=== " << title << " ===\n"
            << "(scale=" << (scale.paper ? "paper" : "bench")
            << ", seed=" << scale.seed << ", repeats=" << scale.repeats
            << ")\n\n";
}

/// Builds a RunSpec carrying the scale's common knobs.
inline exp::RunSpec make_run_spec(const exp::Scale& scale,
                                  const std::string& system,
                                  const std::string& environment,
                                  double duration) {
  exp::RunSpec spec;
  spec.system = system;
  spec.environment = environment;
  spec.duration_s = duration;
  spec.dynamic_phase_s = scale.dynamic_phase_s;
  spec.seed = scale.seed;
  spec.eval_period_iters = scale.eval_period_iters;
  spec.dkt_period_iters = scale.dkt_period_iters;
  return spec;
}

inline std::string fmt_time_or_inf(double seconds) {
  if (!std::isfinite(seconds)) return "not reached";
  return common::format_seconds(seconds);
}

/// When --csv-dir=<dir> is passed, export the run's cluster-mean accuracy
/// curve as <dir>/<stem>.csv for external plotting; no-op otherwise.
inline void maybe_export_curve(const BenchContext& ctx,
                               const exp::RunResult& result,
                               const std::string& stem) {
  const std::string dir = ctx.config.get_string("csv-dir", "");
  if (dir.empty()) return;
  try {
    exp::export_run_curve(result, dir, stem);
    std::cout << "[csv] wrote " << dir << "/" << stem << ".csv\n";
  } catch (const std::exception& e) {
    std::cerr << "[csv] export failed (" << e.what()
              << ") - does the directory exist?\n";
  }
}

/// File-name-safe slug: lowercase, spaces -> '-'.
inline std::string slug(std::string s) {
  for (char& c : s) {
    if (c == ' ') c = '-';
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace dlion::bench

// Shared boilerplate for the figure/table reproduction binaries.
//
// Every bench accepts --scale=bench|paper plus the individual knobs parsed
// by exp::Scale (see src/exp/experiment.h) and prints the reproduced
// table/figure rows to stdout.
#pragma once

#include <cmath>
#include <iostream>
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "exp/experiment.h"
#include "exp/report.h"

namespace dlion::bench {

struct BenchContext {
  common::Config config;
  exp::Scale scale;

  static BenchContext from_args(int argc, char** argv) {
    BenchContext ctx;
    ctx.config = common::Config::from_args(argc, argv);
    ctx.scale = exp::Scale::from_config(ctx.config);
    return ctx;
  }
};

inline void print_header(const std::string& title, const exp::Scale& scale) {
  std::cout << "\n=== " << title << " ===\n"
            << "(scale=" << (scale.paper ? "paper" : "bench")
            << ", seed=" << scale.seed << ", repeats=" << scale.repeats
            << ")\n\n";
}

/// Builds a RunSpec carrying the scale's common knobs.
inline exp::RunSpec make_run_spec(const exp::Scale& scale,
                                  const std::string& system,
                                  const std::string& environment,
                                  double duration) {
  exp::RunSpec spec;
  spec.system = system;
  spec.environment = environment;
  spec.duration_s = duration;
  spec.dynamic_phase_s = scale.dynamic_phase_s;
  spec.seed = scale.seed;
  spec.eval_period_iters = scale.eval_period_iters;
  spec.dkt_period_iters = scale.dkt_period_iters;
  return spec;
}

inline std::string fmt_time_or_inf(double seconds) {
  if (!std::isfinite(seconds)) return "not reached";
  return common::format_seconds(seconds);
}

/// When --csv-dir=<dir> is passed, export the run's cluster-mean accuracy
/// curve as <dir>/<stem>.csv for external plotting; no-op otherwise.
inline void maybe_export_curve(const BenchContext& ctx,
                               const exp::RunResult& result,
                               const std::string& stem) {
  const std::string dir = ctx.config.get_string("csv-dir", "");
  if (dir.empty()) return;
  try {
    exp::export_run_curve(result, dir, stem);
    std::cout << "[csv] wrote " << dir << "/" << stem << ".csv\n";
  } catch (const std::exception& e) {
    std::cerr << "[csv] export failed (" << e.what()
              << ") - does the directory exist?\n";
  }
}

/// File-name-safe slug: lowercase, spaces -> '-'.
inline std::string slug(std::string s) {
  for (char& c : s) {
    if (c == ' ') c = '-';
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace dlion::bench

// Figure 9: the direct knowledge transfer design space (§3.4):
//  (a) when-to-send : exchange period (too frequent wastes network, too
//      rare loses the benefit; frequent-early-only is competitive)
//  (b) whom-to-send : No_DKT vs Best2Worst vs Best2All
//  (c) how-to-merge : the lambda merge ratio
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header("Figure 9: direct knowledge transfer study", ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);
  const double target = ctx.config.get_double("target", 0.65);

  // (a) when-to-send: DKT period sweep. The paper sweeps {10, 100, 1000}
  // iterations plus a frequent-early-only variant over windows ~20x longer;
  // bench scale divides by 4.
  const std::uint64_t base = ctx.scale.paper ? 100 : 25;
  {
    common::Table table({"DKT period (iters)", "time-to-target",
                         "final accuracy"});
    struct Variant {
      std::string label;
      std::uint64_t period;
      std::optional<std::uint64_t> early_only;
    };
    const std::vector<Variant> variants = {
        {"every " + std::to_string(base / 5), base / 5, std::nullopt},
        {"every " + std::to_string(base), base, std::nullopt},
        {"every " + std::to_string(base * 10), base * 10, std::nullopt},
        {"early only (first 40%)", base / 5, std::nullopt},  // filled below
    };
    for (std::size_t i = 0; i < variants.size(); ++i) {
      exp::RunSpec spec = bench::make_run_spec(ctx.scale, "dlion", "Homo B",
                                               ctx.scale.duration_s);
      spec.dkt_period_iters = variants[i].period;
      if (i == variants.size() - 1) {
        spec.extra_configure = [&](core::WorkerOptions& o) {
          // Frequent exchange during the early learning phase only.
          o.dkt.early_only_iters = 4 * base;
        };
      }
      const exp::RunResult res = exp::run_experiment(spec, workload);
      table.row()
          .cell(variants[i].label)
          .cell(bench::fmt_time_or_inf(exp::time_to_accuracy(res, target)))
          .cell(res.final_accuracy, 3);
    }
    std::cout << "(a) when-to-send (target accuracy " << target << ")\n";
    table.print(std::cout);
    std::cout << "Paper: a moderate period (100 iterations) converges "
                 "fastest; frequent-early-only is comparable.\n\n";
  }

  // (b) whom-to-send.
  {
    common::Table table({"variant", "final accuracy"});
    struct ModeVariant {
      std::string label;
      core::DktMode mode;
    };
    for (const ModeVariant& v :
         {ModeVariant{"No_DKT", core::DktMode::kNone},
          ModeVariant{"DKT_Best2worst", core::DktMode::kBest2Worst},
          ModeVariant{"DKT_Best2all", core::DktMode::kBest2All}}) {
      exp::RunSpec spec = bench::make_run_spec(ctx.scale, "dlion", "Homo B",
                                               ctx.scale.duration_s);
      spec.extra_configure = [mode = v.mode](core::WorkerOptions& o) {
        o.dkt.mode = mode;
      };
      const exp::RunResult res = exp::run_experiment(spec, workload);
      table.row().cell(v.label).cell(res.final_accuracy, 3);
    }
    std::cout << "(b) whom-to-send\n";
    table.print(std::cout);
    std::cout << "Paper: transferring the best knowledge to all workers "
                 "gives the best accuracy.\n\n";
  }

  // (c) how-to-merge: lambda sweep.
  {
    common::Table table({"lambda", "final accuracy", "accuracy stddev"});
    for (double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      exp::RunSpec spec = bench::make_run_spec(ctx.scale, "dlion", "Homo B",
                                               ctx.scale.duration_s);
      spec.extra_configure = [lambda](core::WorkerOptions& o) {
        o.dkt.lambda = lambda;
        if (lambda == 0.0) o.dkt.mode = core::DktMode::kNone;
      };
      const exp::RunResult res = exp::run_experiment(spec, workload);
      table.row()
          .cell(lambda, 2)
          .cell(res.final_accuracy, 3)
          .cell(res.accuracy_stddev, 4);
    }
    std::cout << "(c) how-to-merge\n";
    table.print(std::cout);
    std::cout << "Paper: lambda=0 equals No_DKT (lowest accuracy); lambda=1 "
                 "(replace) trains fastest early but is not best at the "
                 "end; intermediate values win overall.\n";
  }
  return 0;
}

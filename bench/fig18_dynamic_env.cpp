// Figure 18: highest accuracy reached in the dynamic environments Dynamic
// SYS A (resources shrink over time) and Dynamic SYS B (resources grow).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header("Figure 18: dynamically changing resources", ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);
  const double duration = 3.0 * ctx.scale.dynamic_phase_s;

  common::Table table({"environment", "system", "best accuracy",
                       "vs baseline"});
  for (const std::string env : {"Dynamic SYS A", "Dynamic SYS B"}) {
    double baseline_acc = 0.0;
    for (const std::string& system : systems::comparison_systems()) {
      const exp::RunResult res = exp::run_experiment(
          bench::make_run_spec(ctx.scale, system, env, duration), workload);
      if (system == "baseline") baseline_acc = res.best_accuracy;
      table.row()
          .cell(env)
          .cell(system)
          .cell(res.best_accuracy, 3)
          .cell(baseline_acc > 0 ? res.best_accuracy / baseline_acc : 0.0, 2);
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: DLion improves over Baseline/Hop/Gaia/Ako by "
               "209%/75%/38%/20% in Dynamic SYS A and 216%/85%/46%/21% in "
               "Dynamic SYS B.\n";
  return 0;
}

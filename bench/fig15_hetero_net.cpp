// Figure 15: accuracy after the training window under heterogeneous network
// capacity (compute homogeneous): Homo A (LAN), Homo B (uniform 50 Mbps),
// Hetero NET A (50/50/35/35/20/20 Mbps).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header("Figure 15: heterogeneous network resources", ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);

  common::Table table({"environment", "system", "accuracy", "GB sent"});
  for (const std::string env : {"Homo A", "Homo B", "Hetero NET A"}) {
    for (const std::string& system : systems::comparison_systems()) {
      const exp::RunResult res = exp::run_experiment(
          bench::make_run_spec(ctx.scale, system, env, ctx.scale.duration_s),
          workload);
      bench::maybe_export_curve(ctx, res,
                                "fig15-" + bench::slug(env) + "-" + system);
      table.row()
          .cell(env)
          .cell(system)
          .cell(res.final_accuracy, 3)
          .cell(static_cast<double>(res.total_bytes) / 1e9, 2);
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: DLion improves over Baseline/Hop/Gaia/Ako by "
               "132%/78%/36%/16% in Homo B and 202%/94%/44%/19% in Hetero "
               "NET A; LAN accuracy is much higher than WAN (training is "
               "communication-bound).\n";
  return 0;
}

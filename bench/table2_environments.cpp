// Tables 2 and 3: the measured Amazon 6-region WAN bandwidth matrix and the
// emulated micro-cloud environment definitions, as encoded in
// exp::environments (the configuration every other bench runs against).
#include <iostream>

#include "common/table.h"
#include "exp/environments.h"
#include "sim/engine.h"

int main() {
  using namespace dlion;
  std::cout << "\n=== Table 2: measured bandwidth between Amazon regions "
               "(Mbps) ===\n\n";
  {
    const auto& names = exp::wan_region_names();
    std::vector<std::string> headers = {"(Mbps)"};
    for (const auto& n : names) headers.push_back(n.substr(0, 2));
    common::Table table(headers);
    const auto& m = exp::wan_bandwidth_matrix();
    for (std::size_t i = 0; i < names.size(); ++i) {
      common::Table& row = table.row();
      row.cell(names[i]);
      for (std::size_t j = 0; j < names.size(); ++j) {
        row.cell(i == j ? std::string("-")
                        : std::to_string(static_cast<int>(m[i][j])));
      }
    }
    table.print(std::cout);
  }

  std::cout << "\n=== Table 3: emulated micro-cloud environments ===\n\n";
  {
    common::Table table({"environment", "compute (units w0..w5)",
                         "network (Mbps w0..w5)", "type"});
    for (const std::string& name : exp::environment_names()) {
      const exp::Environment env = exp::make_environment(name, 500.0);
      std::string compute;
      for (std::size_t w = 0; w < env.compute.size(); ++w) {
        if (w > 0) compute += "/";
        compute += std::to_string(
            static_cast<int>(env.compute[w].units.at(0.0)));
        if (!env.compute[w].units.is_constant()) compute += "*";
      }
      std::string network = "LAN";
      if (env.network_setup) {
        sim::Engine engine;
        sim::Network net(engine, exp::kWorkers);
        env.network_setup(net);
        network.clear();
        for (std::size_t w = 0; w < exp::kWorkers; ++w) {
          if (w > 0) network += "/";
          network += std::to_string(static_cast<int>(net.egress_mbps(w)));
        }
      }
      table.row()
          .cell(name)
          .cell(compute)
          .cell(network)
          .cell(env.gpu ? "GPU (AWS)" : "CPU");
    }
    table.print(std::cout);
    std::cout << "\n('*' marks time-varying schedules; dynamic environments "
                 "show their t=0 values. Homo C / Hetero SYS C units are "
                 "GPUs, others CPU cores.)\n";
  }
  return 0;
}

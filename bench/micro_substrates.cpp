// Microbenchmarks (google-benchmark) for the substrates the experiments sit
// on: GEMM, convolution via im2col, Max N / top-k selection, the message
// codec, and the discrete-event engine + network.
#include <benchmark/benchmark.h>

#include "comm/codec.h"
#include "common/rng.h"
#include "core/gradient_select.h"
#include "nn/model_zoo.h"
#include "sim/network.h"
#include "tensor/ops.h"

namespace {

using namespace dlion;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    tensor::gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
                 c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_CipherForwardBackward(benchmark::State& state) {
  common::Rng rng(2);
  nn::BuiltModel bm = nn::make_cipher_lite(rng);
  const auto batch = static_cast<std::size_t>(state.range(0));
  tensor::Tensor x(tensor::Shape{batch, 1, 8, 8});
  for (auto& v : x.span()) v = static_cast<float>(rng.normal());
  std::vector<std::int32_t> labels(batch, 3);
  for (auto _ : state) {
    const auto res = bm.model.compute_gradients(x, labels);
    benchmark::DoNotOptimize(res.loss);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_CipherForwardBackward)->Arg(16)->Arg(64);

void BM_MaxNSelect(benchmark::State& state) {
  common::Rng rng(3);
  std::vector<float> grad(static_cast<std::size_t>(state.range(0)));
  for (auto& v : grad) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    auto v = core::select_max_n(grad, 0, 10.0);
    benchmark::DoNotOptimize(v.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MaxNSelect)->Arg(1 << 12)->Arg(1 << 16);

void BM_TopKSelect(benchmark::State& state) {
  common::Rng rng(4);
  std::vector<float> grad(static_cast<std::size_t>(state.range(0)));
  for (auto& v : grad) v = static_cast<float>(rng.normal());
  const std::size_t k = grad.size() / 10;
  for (auto _ : state) {
    auto v = core::select_top_k(grad, 0, k);
    benchmark::DoNotOptimize(v.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TopKSelect)->Arg(1 << 12)->Arg(1 << 16);

void BM_CodecRoundTrip(benchmark::State& state) {
  common::Rng rng(5);
  comm::GradientUpdate u;
  u.from = 1;
  u.iteration = 10;
  u.lbs = 32;
  comm::VariableGrad vg;
  vg.var_index = 0;
  vg.dense_size = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::uint32_t> indices;
  std::vector<float> values;
  for (std::uint32_t i = 0; i < vg.dense_size; i += 3) {
    indices.push_back(i);
    values.push_back(static_cast<float>(rng.normal()));
  }
  vg.indices = indices;
  vg.values = values;
  u.vars.push_back(std::move(vg));
  for (auto _ : state) {
    const auto buf = comm::encode(u);
    const auto back = comm::decode_gradient_update(buf);
    benchmark::DoNotOptimize(back.vars.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(comm::wire_bytes(u)));
}
BENCHMARK(BM_CodecRoundTrip)->Arg(1 << 12)->Arg(1 << 16);

void BM_EventEngine(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    const auto n = static_cast<std::size_t>(state.range(0));
    std::size_t counter = 0;
    for (std::size_t i = 0; i < n; ++i) {
      engine.at(static_cast<double>(i % 97), [&counter] { ++counter; });
    }
    engine.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EventEngine)->Arg(1 << 12)->Arg(1 << 16);

void BM_NetworkTransfers(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Network net(engine, 6);
    std::size_t delivered = 0;
    for (int round = 0; round < 100; ++round) {
      for (std::size_t from = 0; from < 6; ++from) {
        for (std::size_t to = 0; to < 6; ++to) {
          if (from == to) continue;
          net.send(from, to, 10'000, [&delivered] { ++delivered; });
        }
      }
    }
    engine.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100 * 30);
}
BENCHMARK(BM_NetworkTransfers);

}  // namespace

BENCHMARK_MAIN();

// Fault tolerance under micro-cloud churn (beyond the paper's evaluation):
// two of six workers crash in staggered windows and a network partition
// briefly splits the cluster. For each system the bench reports the
// accuracy dip caused by the faults, the time the cluster needs to recover
// to its pre-fault accuracy, and how much training survives - with the
// fault-tolerance layer on versus the undefended system.
//
// The fault schedule is deterministic (FaultSchedule + seed), so every row
// is exactly reproducible.
#include "bench_util.h"

#include <algorithm>
#include <limits>

namespace {

/// Largest drop of the cluster-mean accuracy after `t0` below its pre-fault
/// peak (0 if the curve never dips).
double accuracy_dip(const dlion::sim::Trace& curve, double t0) {
  double pre_peak = 0.0;
  double dip = 0.0;
  for (const auto& p : curve.points()) {
    if (p.time <= t0) {
      pre_peak = std::max(pre_peak, p.value);
    } else {
      dip = std::max(dip, pre_peak - p.value);
    }
  }
  return dip;
}

/// Seconds after `t0` until the curve climbs back to `fraction` of its
/// pre-fault peak (+inf if it never does; 0 if it never fell below).
double recovery_seconds(const dlion::sim::Trace& curve, double t0,
                        double fraction = 0.95) {
  double pre_peak = 0.0;
  for (const auto& p : curve.points()) {
    if (p.time <= t0) pre_peak = std::max(pre_peak, p.value);
  }
  const double target = fraction * pre_peak;
  bool fell = false;
  for (const auto& p : curve.points()) {
    if (p.time <= t0) continue;
    if (p.value < target) {
      fell = true;
    } else if (fell) {
      return p.time - t0;
    }
  }
  return fell ? std::numeric_limits<double>::infinity() : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header(
      "Fault tolerance: crash 2-of-6 + partition under churn", ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);
  const double duration = ctx.scale.duration_s;

  // Churn scaled to the run window: worker 5 crashes at 20% of the run,
  // worker 4 at 30%, each down for 20%; the cluster partitions {0,1,2} vs
  // {3,4,5} for a 13% window in the second half.
  exp::ChurnSpec churn;
  churn.crashed_workers = 2;
  churn.crash_start_s = 0.20 * duration;
  churn.downtime_s = 0.20 * duration;
  churn.stagger_s = 0.10 * duration;
  churn.partition_start_s = 0.60 * duration;
  churn.partition_end_s = 0.73 * duration;
  const exp::Environment env =
      exp::make_churn_environment("Homo B", churn, ctx.scale.dynamic_phase_s);
  const double fault_onset = churn.crash_start_s;

  std::cout << "fault schedule: worker 5 down [" << churn.crash_start_s
            << ", " << churn.crash_start_s + churn.downtime_s
            << ") s, worker 4 down ["
            << churn.crash_start_s + churn.stagger_s << ", "
            << churn.crash_start_s + churn.stagger_s + churn.downtime_s
            << ") s, partition {0,1,2}|{3,4,5} [" << churn.partition_start_s
            << ", " << churn.partition_end_s << ") s\n\n";

  common::Table table({"system", "faults", "FT", "best acc", "final acc",
                       "vs clean", "dip", "recovery", "iters", "drops",
                       "dead ltrs", "retries"});
  for (const std::string system : {"baseline", "hop", "dlion"}) {
    // Reference: the same system with no faults injected.
    exp::RunSpec clean =
        bench::make_run_spec(ctx.scale, system, "Homo B", duration);
    const exp::RunResult ref = exp::run_experiment(clean, workload);
    table.row()
        .cell(system)
        .cell("none")
        .cell("-")
        .cell(ref.best_accuracy, 3)
        .cell(ref.final_accuracy, 3)
        .cell("1.00")
        .cell("-")
        .cell("-")
        .cell(static_cast<double>(ref.total_iterations), 0)
        .cell("0")
        .cell("0")
        .cell("0");

    for (const bool ft : {false, true}) {
      exp::RunSpec spec =
          bench::make_run_spec(ctx.scale, system, "Homo B", duration);
      spec.env_override = env;
      spec.auto_fault_tolerance = ft;
      const exp::RunResult res = exp::run_experiment(spec, workload);
      table.row()
          .cell(system)
          .cell("churn")
          .cell(ft ? "on" : "off")
          .cell(res.best_accuracy, 3)
          .cell(res.final_accuracy, 3)
          .cell(ref.final_accuracy > 0.0
                    ? res.final_accuracy / ref.final_accuracy
                    : 0.0,
                2)
          .cell(accuracy_dip(res.mean_curve, fault_onset), 3)
          .cell(bench::fmt_time_or_inf(
              recovery_seconds(res.mean_curve, fault_onset)))
          .cell(static_cast<double>(res.total_iterations), 0)
          .cell(static_cast<double>(res.messages_dropped), 0)
          .cell(static_cast<double>(res.dead_letters), 0)
          .cell(static_cast<double>(res.reliable_retries), 0);
      if (ft) bench::maybe_export_curve(ctx, res, "ft-" + system);
    }
  }
  table.print(std::cout);
  std::cout
      << "\nReading the table: with the fault-tolerance layer off, the\n"
         "synchronous and bounded-staleness systems stall once a crashed\n"
         "peer exhausts the staleness budget (iteration counts collapse).\n"
         "With it on, heartbeat suspicion shrinks the wait-set, weighted\n"
         "updates renormalize over live workers, and crashed workers rejoin\n"
         "via checkpoint restore + state catch-up, so training rides through\n"
         "the churn with a bounded accuracy dip and finite recovery time.\n";
  return 0;
}

// Fault tolerance under micro-cloud churn (beyond the paper's evaluation):
// two of six workers crash in staggered windows and a network partition
// briefly splits the cluster. For each system the bench reports the
// accuracy dip caused by the faults, the time the cluster needs to recover
// to its pre-fault accuracy, and how much training survives - with the
// fault-tolerance layer on versus the undefended system.
//
// The fault schedule is deterministic (FaultSchedule + seed), so every row
// is exactly reproducible.
#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>

namespace {

using dlion::bench::jcurve;
using dlion::bench::jnum;

/// Largest drop of the cluster-mean accuracy after `t0` below its pre-fault
/// peak (0 if the curve never dips).
double accuracy_dip(const dlion::sim::Trace& curve, double t0) {
  double pre_peak = 0.0;
  double dip = 0.0;
  for (const auto& p : curve.points()) {
    if (p.time <= t0) {
      pre_peak = std::max(pre_peak, p.value);
    } else {
      dip = std::max(dip, pre_peak - p.value);
    }
  }
  return dip;
}

/// Seconds after `t0` until the curve climbs back to `fraction` of its
/// pre-fault peak (+inf if it never does; 0 if it never fell below).
double recovery_seconds(const dlion::sim::Trace& curve, double t0,
                        double fraction = 0.95) {
  double pre_peak = 0.0;
  for (const auto& p : curve.points()) {
    if (p.time <= t0) pre_peak = std::max(pre_peak, p.value);
  }
  const double target = fraction * pre_peak;
  bool fell = false;
  for (const auto& p : curve.points()) {
    if (p.time <= t0) continue;
    if (p.value < target) {
      fell = true;
    } else if (fell) {
      return p.time - t0;
    }
  }
  return fell ? std::numeric_limits<double>::infinity() : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header(
      "Fault tolerance: crash 2-of-6 + partition under churn", ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);
  const double duration = ctx.scale.duration_s;

  // Churn scaled to the run window: worker 5 crashes at 20% of the run,
  // worker 4 at 30%, each down for 20%; the cluster partitions {0,1,2} vs
  // {3,4,5} for a 13% window in the second half.
  exp::ChurnSpec churn;
  churn.crashed_workers = 2;
  churn.crash_start_s = 0.20 * duration;
  churn.downtime_s = 0.20 * duration;
  churn.stagger_s = 0.10 * duration;
  churn.partition_start_s = 0.60 * duration;
  churn.partition_end_s = 0.73 * duration;
  const exp::Environment env =
      exp::make_churn_environment("Homo B", churn, ctx.scale.dynamic_phase_s);
  const double fault_onset = churn.crash_start_s;

  std::cout << "fault schedule: worker 5 down [" << churn.crash_start_s
            << ", " << churn.crash_start_s + churn.downtime_s
            << ") s, worker 4 down ["
            << churn.crash_start_s + churn.stagger_s << ", "
            << churn.crash_start_s + churn.stagger_s + churn.downtime_s
            << ") s, partition {0,1,2}|{3,4,5} [" << churn.partition_start_s
            << ", " << churn.partition_end_s << ") s\n\n";

  common::Table table({"system", "faults", "FT", "best acc", "final acc",
                       "vs clean", "dip", "recovery", "iters", "drops",
                       "dead ltrs", "retries"});
  for (const std::string system : {"baseline", "hop", "dlion"}) {
    // Reference: the same system with no faults injected.
    exp::RunSpec clean =
        bench::make_run_spec(ctx.scale, system, "Homo B", duration);
    const exp::RunResult ref = exp::run_experiment(clean, workload);
    table.row()
        .cell(system)
        .cell("none")
        .cell("-")
        .cell(ref.best_accuracy, 3)
        .cell(ref.final_accuracy, 3)
        .cell("1.00")
        .cell("-")
        .cell("-")
        .cell(static_cast<double>(ref.total_iterations), 0)
        .cell("0")
        .cell("0")
        .cell("0");

    for (const bool ft : {false, true}) {
      exp::RunSpec spec =
          bench::make_run_spec(ctx.scale, system, "Homo B", duration);
      spec.env_override = env;
      spec.auto_fault_tolerance = ft;
      const exp::RunResult res = exp::run_experiment(spec, workload);
      table.row()
          .cell(system)
          .cell("churn")
          .cell(ft ? "on" : "off")
          .cell(res.best_accuracy, 3)
          .cell(res.final_accuracy, 3)
          .cell(ref.final_accuracy > 0.0
                    ? res.final_accuracy / ref.final_accuracy
                    : 0.0,
                2)
          .cell(accuracy_dip(res.mean_curve, fault_onset), 3)
          .cell(bench::fmt_time_or_inf(
              recovery_seconds(res.mean_curve, fault_onset)))
          .cell(static_cast<double>(res.total_iterations), 0)
          .cell(static_cast<double>(res.messages_dropped), 0)
          .cell(static_cast<double>(res.dead_letters), 0)
          .cell(static_cast<double>(res.reliable_retries), 0);
      if (ft) bench::maybe_export_curve(ctx, res, "ft-" + system);
    }
  }
  table.print(std::cout);

  // --- Elastic membership: deterministic join/leave + multi-peer bootstrap
  // (DESIGN.md, "Elastic membership"). Each scenario runs once with its
  // churn schedule and once as the churn-free static roster of its initial
  // members; the comparison is the accuracy cost of elasticity. Results go
  // to stdout and to BENCH_elastic.json (--elastic-out=PATH overrides).
  std::cout << "\n--- elastic membership: join/leave + multi-peer bootstrap "
               "---\n\n";
  common::Table etable({"scenario", "slots", "members", "joins", "leaves",
                        "epoch", "join lat", "min donors", "boot MB",
                        "final acc", "static acc", "watchdog"});
  std::string json;
  json += "{\n";
  json += "  \"schema\": \"dlion-elastic-v1\",\n";
  json += "  \"generated_by\": \"bench/fault_tolerance\",\n";
  json += "  \"system\": \"dlion\",\n";
  json += "  \"seed\": " + std::to_string(ctx.scale.seed) + ",\n";
  json += "  \"duration_s\": " + jnum(duration, 1) + ",\n";
  json += "  \"scenarios\": [\n";
  const std::vector<std::string> kinds = exp::elastic_environment_names();
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const std::string& kind = kinds[k];
    const exp::Environment elastic_env =
        exp::make_elastic_environment(kind, ctx.scale.dynamic_phase_s);

    exp::RunSpec spec =
        bench::make_run_spec(ctx.scale, "dlion", kind, duration);
    spec.env_override = elastic_env;
    spec.watchdog = obs::WatchdogConfig{};
    const exp::RunResult res = exp::run_experiment(spec, workload);

    // Churn-free counterpart: the initial members as a static roster.
    exp::Environment static_env;
    static_env.name = kind + " static";
    static_env.compute.assign(
        elastic_env.compute.begin(),
        elastic_env.compute.begin() +
            static_cast<std::ptrdiff_t>(elastic_env.initial_workers));
    exp::RunSpec static_spec =
        bench::make_run_spec(ctx.scale, "dlion", static_env.name, duration);
    static_spec.env_override = static_env;
    const exp::RunResult sres = exp::run_experiment(static_spec, workload);

    etable.row()
        .cell(kind)
        .cell(static_cast<double>(elastic_env.compute.size()), 0)
        .cell(std::to_string(elastic_env.initial_workers) + "->" +
              std::to_string(res.final_members))
        .cell(static_cast<double>(res.joins), 0)
        .cell(static_cast<double>(res.leaves), 0)
        .cell(static_cast<double>(res.roster_epoch), 0)
        .cell(res.join_latency_mean_s, 2)
        .cell(static_cast<double>(res.min_bootstrap_donors), 0)
        .cell(static_cast<double>(res.bootstrap_bytes) / 1e6, 2)
        .cell(res.final_accuracy, 3)
        .cell(sres.final_accuracy, 3)
        .cell(res.telemetry.watchdog_degraded ? "degraded" : "clean");

    json += "    {\n";
    json += "      \"name\": \"" + kind + "\",\n";
    json += "      \"capacity\": " +
            std::to_string(elastic_env.compute.size()) + ",\n";
    json += "      \"initial_members\": " +
            std::to_string(elastic_env.initial_workers) + ",\n";
    json += "      \"final_members\": " + std::to_string(res.final_members) +
            ",\n";
    json += "      \"joins\": " + std::to_string(res.joins) + ",\n";
    json += "      \"leaves\": " + std::to_string(res.leaves) + ",\n";
    json += "      \"roster_epoch\": " + std::to_string(res.roster_epoch) +
            ",\n";
    json += "      \"join_latency_mean_s\": " +
            jnum(res.join_latency_mean_s) + ",\n";
    json += "      \"join_latency_max_s\": " + jnum(res.join_latency_max_s) +
            ",\n";
    json += "      \"min_bootstrap_donors\": " +
            std::to_string(res.min_bootstrap_donors) + ",\n";
    json += "      \"bootstrap_bytes\": " +
            std::to_string(res.bootstrap_bytes) + ",\n";
    json += "      \"stale_epoch_rejected\": " +
            std::to_string(res.stale_epoch_rejected) + ",\n";
    json += "      \"dead_letter_evictions\": " +
            std::to_string(res.dead_letter_evictions) + ",\n";
    json += "      \"total_iterations\": " +
            std::to_string(res.total_iterations) + ",\n";
    json += std::string("      \"watchdog_degraded\": ") +
            (res.telemetry.watchdog_degraded ? "true" : "false") + ",\n";
    json += "      \"watchdog_events\": " +
            std::to_string(res.telemetry.watchdog_events.size()) + ",\n";
    json += "      \"final_accuracy\": " + jnum(res.final_accuracy) + ",\n";
    json += "      \"best_accuracy\": " + jnum(res.best_accuracy) + ",\n";
    json += "      \"time_to_70_s\": " + jnum(res.time_to_70, 2) + ",\n";
    json += "      \"static_final_accuracy\": " + jnum(sres.final_accuracy) +
            ",\n";
    json += "      \"static_best_accuracy\": " + jnum(sres.best_accuracy) +
            ",\n";
    json += "      \"join_log\": [";
    for (std::size_t i = 0; i < res.join_log.size(); ++i) {
      const core::JoinRecord& rec = res.join_log[i];
      if (i > 0) json += ", ";
      json += "{\"worker\": " + std::to_string(rec.worker) +
              ", \"requested_s\": " + jnum(rec.requested, 2) +
              ", \"completed_s\": " + jnum(rec.completed, 2) +
              ", \"donors\": " + std::to_string(rec.donors) +
              ", \"bytes\": " + std::to_string(rec.bootstrap_bytes) + "}";
    }
    json += "],\n";
    json += "      \"accuracy_curve\": " + jcurve(res.mean_curve) + ",\n";
    json += "      \"static_accuracy_curve\": " + jcurve(sres.mean_curve) +
            "\n";
    json += "    }";
    if (k + 1 < kinds.size()) json += ",";
    json += "\n";
  }
  json += "  ]\n}\n";
  etable.print(std::cout);

  const std::string elastic_out =
      ctx.config.get_string("elastic-out", "BENCH_elastic.json");
  if (!elastic_out.empty()) {
    std::ofstream out(elastic_out);
    out << json;
    std::cout << "\n[json] wrote " << elastic_out << "\n";
  }

  std::cout
      << "\nReading the table: with the fault-tolerance layer off, the\n"
         "synchronous and bounded-staleness systems stall once a crashed\n"
         "peer exhausts the staleness budget (iteration counts collapse).\n"
         "With it on, heartbeat suspicion shrinks the wait-set, weighted\n"
         "updates renormalize over live workers, and crashed workers rejoin\n"
         "via checkpoint restore + state catch-up, so training rides through\n"
         "the churn with a bounded accuracy dip and finite recovery time.\n";
  return 0;
}

// Design-choice ablations beyond the paper's Fig. 14 (DESIGN.md §4):
//  (a) the Max N quality floor min_n (paper picks 0.85),
//  (b) the link-budget headroom fraction,
//  (c) DLion's synchronization policy (bounded staleness vs sync vs async).
// These knobs are DLion implementation choices the paper fixes without a
// sweep; this bench regenerates the sensitivity data behind them.
#include "bench_util.h"

#include "core/link_prioritizer.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header("Ablation: DLion design choices", ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);
  const std::string env = "Hetero SYS A";

  {
    std::cout << "(a) Max N quality floor (min_n)\n";
    common::Table table({"min_n", "accuracy", "GB sent"});
    for (double min_n : {0.1, 0.85, 5.0, 25.0}) {
      exp::RunSpec spec = bench::make_run_spec(ctx.scale, "dlion", env,
                                               ctx.scale.duration_s);
      spec.strategy_override = [min_n](std::size_t) -> core::StrategyPtr {
        core::LinkPrioritizerConfig cfg;
        cfg.min_n = min_n;
        return std::make_unique<core::LinkPrioritizer>(cfg);
      };
      const exp::RunResult res = exp::run_experiment(spec, workload);
      table.row()
          .cell(min_n, 2)
          .cell(res.final_accuracy, 3)
          .cell(static_cast<double>(res.total_bytes) / 1e9, 2);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "(b) link budget headroom fraction\n";
    common::Table table({"budget fraction", "accuracy", "GB sent"});
    for (double frac : {0.5, 0.7, 0.9, 1.0}) {
      exp::RunSpec spec = bench::make_run_spec(ctx.scale, "dlion", env,
                                               ctx.scale.duration_s);
      spec.strategy_override = [frac](std::size_t) -> core::StrategyPtr {
        core::LinkPrioritizerConfig cfg;
        cfg.budget_fraction = frac;
        return std::make_unique<core::LinkPrioritizer>(cfg);
      };
      const exp::RunResult res = exp::run_experiment(spec, workload);
      table.row()
          .cell(frac, 2)
          .cell(res.final_accuracy, 3)
          .cell(static_cast<double>(res.total_bytes) / 1e9, 2);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "(c) DLion synchronization policy\n";
    common::Table table({"policy", "accuracy", "iterations"});
    struct Policy {
      std::string label;
      core::SyncPolicy policy;
    };
    for (const Policy& p :
         {Policy{"synchronous", core::SyncPolicy::synchronous()},
          Policy{"bounded(5,0) [default]", core::SyncPolicy::bounded(5, 0)},
          Policy{"bounded(20,1)", core::SyncPolicy::bounded(20, 1)},
          Policy{"asynchronous", core::SyncPolicy::asynchronous()}}) {
      exp::RunSpec spec = bench::make_run_spec(ctx.scale, "dlion", env,
                                               ctx.scale.duration_s);
      spec.extra_configure = [policy = p.policy](core::WorkerOptions& o) {
        o.sync = policy;
      };
      const exp::RunResult res = exp::run_experiment(spec, workload);
      table.row()
          .cell(p.label)
          .cell(res.final_accuracy, 3)
          .cell(static_cast<long long>(res.total_iterations));
    }
    table.print(std::cout);
  }

  std::cout << "\n(d) Extension systems on the same environment\n";
  {
    common::Table table({"system", "accuracy", "GB sent"});
    for (const std::string system : {"dgc", "prague", "dlion"}) {
      const exp::RunResult res = exp::run_experiment(
          bench::make_run_spec(ctx.scale, system, env, ctx.scale.duration_s),
          workload);
      table.row()
          .cell(system)
          .cell(res.final_accuracy, 3)
          .cell(static_cast<double>(res.total_bytes) / 1e9, 2);
    }
    table.print(std::cout);
    std::cout << "\n(dgc = error-feedback top-k compression, prague = "
                 "randomized partial all-reduce; see DESIGN.md "
                 "extensions.)\n";
  }
  return 0;
}

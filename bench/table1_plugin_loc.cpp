// Table 1: lines of code needed to emulate each comparison system inside
// the DLion framework's plugin APIs. We measure our own implementations the
// same way: the body of each system's generate_partial_gradients plugin
// (PartialGradientStrategy::generate) and any synchronization-policy code it
// needs beyond the built-in synch_training parameterization.
//
// The binary parses the actual sources in the repository (located via the
// DLION_SOURCE_DIR compile definition), so the numbers track the code.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/table.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Count the statement lines of the function whose definition contains
/// `marker` (e.g. "BaselineStrategy::generate"): from the opening brace to
/// its match, skipping blank and comment-only lines.
int function_loc(const std::string& source, const std::string& marker) {
  const std::size_t pos = source.find(marker);
  if (pos == std::string::npos) return -1;
  const std::size_t open = source.find('{', pos);
  if (open == std::string::npos) return -1;
  int depth = 0;
  std::size_t end = open;
  for (std::size_t i = open; i < source.size(); ++i) {
    if (source[i] == '{') ++depth;
    if (source[i] == '}') {
      --depth;
      if (depth == 0) {
        end = i;
        break;
      }
    }
  }
  int lines = 0;
  std::istringstream body(source.substr(open + 1, end - open - 1));
  std::string line;
  while (std::getline(body, line)) {
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;        // blank
    if (line.compare(first, 2, "//") == 0) continue; // comment-only
    ++lines;
  }
  return lines;
}

}  // namespace

int main() {
  const std::string root = DLION_SOURCE_DIR;
  std::cout << "\n=== Table 1: lines of code to emulate systems in the "
               "DLion framework ===\n\n";

  dlion::common::Table table(
      {"API", "Baseline", "Hop", "Gaia", "Ako"});

  const std::string baseline =
      read_file(root + "/src/systems/baseline.cpp");
  const std::string gaia = read_file(root + "/src/systems/gaia.cpp");
  const std::string ako = read_file(root + "/src/systems/ako.cpp");
  const std::string sync = read_file(root + "/src/core/sync_strategy.cpp");

  const int baseline_gen = function_loc(baseline,
                                        "BaselineStrategy::generate");
  const int gaia_gen = function_loc(gaia, "GaiaStrategy::generate");
  const int ako_gen = function_loc(ako, "AkoStrategy::generate");
  // Hop reuses the Baseline gradient plugin; its distinguishing code is the
  // bounded-staleness/backup-worker synchronization policy.
  const int sync_loc = function_loc(sync, "can_start_iteration");

  table.row()
      .cell("generate_partial_gradients")
      .cell(static_cast<long long>(baseline_gen))
      .cell(static_cast<long long>(baseline_gen))  // Hop == Baseline
      .cell(static_cast<long long>(gaia_gen))
      .cell(static_cast<long long>(ako_gen));
  table.row()
      .cell("synch_training (shared policy)")
      .cell(0LL)
      .cell(static_cast<long long>(sync_loc))
      .cell(0LL)
      .cell(0LL);
  table.print(std::cout);
  std::cout << "\nPaper's Table 1: generate_partial_gradients = 1/1/1/23 "
               "lines (Baseline/Hop/Gaia/Ako) and synch_training = 20 lines "
               "for Hop. Our plugin bodies are of the same order - each "
               "system is a small strategy on top of the framework.\n";
  return 0;
}

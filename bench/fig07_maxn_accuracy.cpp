// Figure 7: final model accuracy of Max N integrated with DLion for
// different (fixed) N values, trained to convergence on a homogeneous
// environment. Larger N (more gradient entries) -> higher accuracy.
#include "bench_util.h"

#include "core/link_prioritizer.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header("Figure 7: accuracy vs Max N's N value", ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);

  common::Table table({"N", "final accuracy", "GB sent"});
  for (double n : {1.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    exp::RunSpec spec = bench::make_run_spec(ctx.scale, "dlion", "Homo A",
                                             1.5 * ctx.scale.duration_s);
    spec.strategy_override = [n](std::size_t) -> core::StrategyPtr {
      core::LinkPrioritizerConfig cfg;
      cfg.adaptive = false;  // fixed N, no transmission speed assurance
      cfg.fixed_n = n;
      return std::make_unique<core::LinkPrioritizer>(cfg);
    };
    const exp::RunResult res = exp::run_experiment(spec, workload);
    table.row()
        .cell(n, 2)
        .cell(res.best_accuracy, 3)
        .cell(static_cast<double>(res.total_bytes) / 1e9, 3);
  }
  table.print(std::cout);
  std::cout << "\nPaper: larger N values lead to higher accuracy; N=100 "
               "equals exchanging whole gradients.\n";
  return 0;
}

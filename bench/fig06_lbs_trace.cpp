// Figure 6: local batch sizes assigned by the GBS + LBS controllers over
// time for 6 workers with heterogeneous CPU cores (24/24/12/12/4/4). As the
// GBS controller raises the global batch size, each worker's LBS tracks its
// relative compute power.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header("Figure 6: LBS adjustment under the GBS controller",
                      ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);

  exp::Environment env;
  env.name = "Hetero cores 24/24/12/12/4/4";
  for (double cores : {24.0, 24.0, 12.0, 12.0, 4.0, 4.0}) {
    env.compute.push_back(exp::cpu_cores(cores));
  }

  const systems::SystemSpec system = systems::make_system("dlion");
  core::ClusterSpec spec;
  spec.model = workload.model;
  spec.seed = ctx.scale.seed;
  spec.compute = env.compute;
  spec.duration_s = ctx.scale.duration_s;
  spec.strategy_factory = system.strategy_factory;
  core::WorkerOptions options;
  options.learning_rate = workload.learning_rate;
  options.eval_period_iters = ctx.scale.eval_period_iters;
  system.configure(options);
  options.dkt.period_iters = ctx.scale.dkt_period_iters;
  spec.worker_options = options;

  core::Cluster cluster(spec, workload.data.train, workload.data.test);
  cluster.run();

  common::Table table({"time(s)", "GBS", "LBS w0(24c)", "w1(24c)", "w2(12c)",
                       "w3(12c)", "w4(4c)", "w5(4c)"});
  const double step = ctx.scale.duration_s / 15.0;
  for (double t = step; t <= ctx.scale.duration_s; t += step) {
    common::Table& row = table.row();
    row.cell(t, 0).cell(cluster.worker(0).gbs_trace().value_at(t), 0);
    for (std::size_t w = 0; w < cluster.size(); ++w) {
      row.cell(cluster.worker(w).lbs_trace().value_at(t), 0);
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: GBS rises in steps; each step re-divides the batch "
               "proportionally to worker compute power (24-core workers get "
               "~6x the LBS of 4-core workers).\n";
  return 0;
}

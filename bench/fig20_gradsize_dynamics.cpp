// Figure 20: the per-link prioritized gradient exchange adapts the partial
// gradient size as link bandwidth changes: 30 Mbps during 0-100 s and
// 600-1000 s, 100 Mbps in between.
#include "bench_util.h"

#include "common/stats.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header(
      "Figure 20: partial gradient size under dynamic bandwidth", ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);
  const double unit = ctx.scale.paper ? 1.0 : ctx.scale.duration_s / 1000.0;
  const double duration = 1000.0 * unit;

  core::ClusterSpec spec;
  spec.model = workload.model;
  spec.seed = ctx.scale.seed;
  for (std::size_t w = 0; w < exp::kWorkers; ++w) {
    spec.compute.push_back(exp::cpu_cores(24));
  }
  spec.network_setup = [unit](sim::Network& net) {
    for (std::size_t w = 0; w < exp::kWorkers; ++w) {
      net.set_egress(w, sim::Schedule{{0.0, 30.0},
                                      {100.0 * unit, 100.0},
                                      {600.0 * unit, 30.0}});
    }
  };
  spec.duration_s = duration;
  const systems::SystemSpec system = systems::make_system("dlion");
  spec.strategy_factory = system.strategy_factory;
  core::WorkerOptions options;
  options.learning_rate = workload.learning_rate;
  options.eval_period_iters = ctx.scale.eval_period_iters;
  system.configure(options);
  options.dkt.period_iters = ctx.scale.dkt_period_iters;
  spec.worker_options = options;

  core::Cluster cluster(spec, workload.data.train, workload.data.test);
  cluster.run();

  // Average the number of gradients worker 0 ships to worker 1 in 50 s
  // buckets so the bandwidth phases are visible.
  const auto& trace = cluster.worker(0).entries_trace(1).points();
  common::Table table({"time bucket (s)", "bandwidth", "mean gradients/send"});
  const double bucket = 50.0 * unit;
  for (double t0 = 0.0; t0 < duration; t0 += bucket) {
    common::RunningStats entries;
    for (const auto& p : trace) {
      if (p.time >= t0 && p.time < t0 + bucket) entries.add(p.value);
    }
    if (entries.count() == 0) continue;
    const double rep_t = t0 + bucket / 2;
    const bool slow = rep_t < 100.0 * unit || rep_t >= 600.0 * unit;
    table.row()
        .cell(std::to_string(static_cast<int>(t0 / unit)) + "-" +
              std::to_string(static_cast<int>((t0 + bucket) / unit)))
        .cell(slow ? "30 Mbps" : "100 Mbps")
        .cell(entries.mean(), 0);
  }
  table.print(std::cout);
  std::cout << "\nPaper: the partial gradient size rises ~3x when bandwidth "
               "jumps from 30 to 100 Mbps and falls back when it drops.\n";
  return 0;
}

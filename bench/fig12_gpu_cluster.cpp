// Figure 12: model accuracy of MobileNet/SynthImageNet trained on the GPU
// cluster for the training window, Homo C and Hetero SYS C.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header(
      "Figure 12: homogeneous and heterogeneous system environments "
      "(GPU cluster, MobileNet)",
      ctx.scale);
  const exp::Workload workload = exp::make_workload("gpu", ctx.scale);

  common::Table table({"environment", "system", "accuracy", "iterations",
                       "GB sent"});
  // The paper's Fig. 12 quotes improvements over Hop, Gaia and Ako.
  for (const std::string env : {"Homo C", "Hetero SYS C"}) {
    for (const std::string system :
         {"hop", "gaia", "ako", "dlion"}) {
      const exp::RunResult res = exp::run_experiment(
          bench::make_run_spec(ctx.scale, system, env,
                               ctx.scale.gpu_duration_s),
          workload);
      bench::maybe_export_curve(ctx, res,
                                "fig12-" + bench::slug(env) + "-" + system);
      table.row()
          .cell(env)
          .cell(system)
          .cell(res.final_accuracy, 3)
          .cell(static_cast<long long>(res.total_iterations))
          .cell(static_cast<double>(res.total_bytes) / 1e9, 2);
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: DLion's accuracy is 3.4x/4.2x/2.3x Hop/Gaia/Ako in "
               "Homo C and 2.5x/4.2x/3.1x in Hetero SYS C (network-bound "
               "GPU training; DKT drives the gap).\n";
  return 0;
}

// Figure 8: per-link prioritized gradient exchange sends different partial
// gradient sizes on links with different bandwidth (worker1->worker3 at
// 50 Mbps vs worker1->worker5 at 20 Mbps; static bandwidths).
#include "bench_util.h"

#include "common/stats.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header(
      "Figure 8: partial gradient size per communication link", ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);

  // Explicit link matrix: worker 0's links to peers 2 and 4 are shaped to
  // 50 and 20 Mbps respectively; everything else stays LAN.
  exp::Environment env;
  env.name = "two shaped links";
  for (std::size_t i = 0; i < exp::kWorkers; ++i) {
    env.compute.push_back(exp::cpu_cores(24));
  }
  env.network_setup = [](sim::Network& net) {
    net.set_link(0, 2, sim::Schedule(50.0));
    net.set_link(0, 4, sim::Schedule(20.0));
  };

  exp::RunSpec spec = bench::make_run_spec(ctx.scale, "dlion", "",
                                           ctx.scale.duration_s);
  spec.env_override = env;

  const systems::SystemSpec system = systems::make_system("dlion");
  core::ClusterSpec cluster_spec;
  cluster_spec.model = workload.model;
  cluster_spec.seed = ctx.scale.seed;
  cluster_spec.compute = env.compute;
  cluster_spec.network_setup = env.network_setup;
  cluster_spec.duration_s = ctx.scale.duration_s;
  cluster_spec.strategy_factory = system.strategy_factory;
  core::WorkerOptions options;
  options.learning_rate = workload.learning_rate;
  options.eval_period_iters = ctx.scale.eval_period_iters;
  system.configure(options);
  options.dkt.period_iters = ctx.scale.dkt_period_iters;
  // Fixed LBS isolates the per-link adaptation: with the GBS controller
  // growing batches, iterations slow down and every link's byte budget
  // saturates at the full model, hiding the per-link difference.
  options.dynamic_batching = false;
  cluster_spec.worker_options = options;

  core::Cluster cluster(cluster_spec, workload.data.train,
                        workload.data.test);
  cluster.run();

  common::Table table({"link", "bandwidth", "mean gradients/iteration",
                       "sends"});
  for (const auto& [peer, mbps] :
       std::vector<std::pair<std::size_t, double>>{{2, 50.0}, {4, 20.0}}) {
    common::RunningStats entries;
    for (const auto& p : cluster.worker(0).entries_trace(peer).points()) {
      entries.add(p.value);
    }
    table.row()
        .cell("worker0 -> worker" + std::to_string(peer))
        .cell(std::to_string(static_cast<int>(mbps)) + " Mbps")
        .cell(entries.mean(), 0)
        .cell(static_cast<long long>(entries.count()));
  }
  table.print(std::cout);
  std::cout << "\nPaper: the 50 Mbps link carries ~2.5x the partial gradient "
               "size of the 20 Mbps link; sizes are steady because "
               "bandwidths are static.\n";
  return 0;
}

// Figure 14: training time to 70% accuracy for the dynamic batching (DB) and
// weighted model update (WU) ablation: DLion-no-DBWU vs DLion-no-WU vs full
// DLion on Homo A, Hetero CPU A, Hetero CPU B.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header(
      "Figure 14: effect of dynamic batching and weighted model update",
      ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);

  // Lower threshold at bench scale keeps the metric reachable in every cell.
  const double target = ctx.config.get_double("target", 0.65);

  common::Table table({"environment", "variant", "time-to-target",
                       "accuracy"});
  for (const std::string env :
       {"Homo A", "Hetero CPU A", "Hetero CPU B"}) {
    for (const std::string variant :
         {"dlion-no-dbwu", "dlion-no-wu", "dlion"}) {
      const exp::RunResult res = exp::run_experiment(
          bench::make_run_spec(ctx.scale, variant, env,
                               ctx.scale.duration_s),
          workload);
      table.row()
          .cell(env)
          .cell(variant)
          .cell(bench::fmt_time_or_inf(exp::time_to_accuracy(res, target)))
          .cell(res.final_accuracy, 3);
    }
  }
  table.print(std::cout);
  std::cout << "\n(target accuracy = " << target
            << ")\nPaper: dynamic batching gives 37%/22%/25% speedup in "
               "Homo A / Hetero CPU A / Hetero CPU B; weighted update adds "
               "12%/13% in the heterogeneous cases and is neutral in "
               "Homo A (Eq. 7 reduces to Eq. 4).\n";
  return 0;
}

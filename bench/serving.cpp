// Serving tier under Table-3 heterogeneity (DESIGN.md "Serving tier"):
// three inference replicas ride on extra fabric slots next to a live
// "Hetero SYS A" training run, dynamic batching trades the batch-formation
// deadline against packed-GEMM efficiency, and replicas adopt weight
// snapshots published online by the freshest worker.
//
// One row per arrival process (open-loop Poisson, bursty, diurnal). Every
// number is simulated-clock-deterministic: reruns (any DLION_THREADS,
// obs on or off) produce a byte-identical BENCH_serving.json.
//
// Usage: serving [--scale=bench|paper] [--duration=S] [--seed=N]
//                [--rate=RPS] [--replicas=N] [--out=BENCH_serving.json]
#include "bench_util.h"

#include <cstdio>
#include <fstream>
#include <vector>

namespace {

using dlion::bench::fnv1a;
using dlion::bench::hex64;
using dlion::bench::jnum;

std::string jints(const std::vector<std::uint64_t>& v) {
  std::string j = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) j += ", ";
    j += std::to_string(v[i]);
  }
  return j + "]";
}

std::string jsizes(const std::vector<std::size_t>& v) {
  std::string j = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) j += ", ";
    j += std::to_string(v[i]);
  }
  return j + "]";
}

/// Order-sensitive FNV-1a over the scenario's integer counters: a compact
/// determinism anchor for the CI thread-count comparison.
std::uint64_t stats_checksum(const dlion::serve::ServingStats& s) {
  std::uint64_t h = 1469598103934665603ULL;
  const std::uint64_t ints[] = {s.requests_arrived, s.requests_admitted,
                                s.requests_rejected, s.requests_served,
                                s.deadline_drops,    s.batches,
                                s.refreshes_published, s.refreshes_adopted,
                                s.stale_batches};
  h = fnv1a(ints, sizeof(ints), h);
  if (!s.batch_size_counts.empty()) {
    h = fnv1a(s.batch_size_counts.data(),
              s.batch_size_counts.size() * sizeof(std::uint64_t), h);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header("Serving tier: dynamic batching + online refresh",
                      ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);
  const double duration = ctx.scale.duration_s;
  const double rate = ctx.config.get_double("rate", 300.0);
  const std::size_t replicas =
      static_cast<std::size_t>(ctx.config.get_int("replicas", 3));
  const std::string env_name = "Hetero SYS A";

  common::Table table({"arrival", "arrived", "served", "drops", "rej",
                       "req/s", "p50 ms", "p99 ms", "batch", "refreshes",
                       "stale p50 s", "acc"});
  std::string scenarios;
  const serve::ArrivalKind kinds[] = {serve::ArrivalKind::kPoisson,
                                      serve::ArrivalKind::kBursty,
                                      serve::ArrivalKind::kDiurnal};
  for (const serve::ArrivalKind kind : kinds) {
    exp::RunSpec spec =
        bench::make_run_spec(ctx.scale, "dlion", env_name, duration);
    serve::ServingSpec serving;
    serving.replicas = replicas;
    serving.arrival.kind = kind;
    serving.arrival.rate_rps = rate;
    spec.serving = serving;
    const exp::RunResult res = exp::run_experiment(spec, workload);
    const serve::ServingStats& s = *res.serving;

    const char* name = serve::arrival_kind_name(kind);
    table.row()
        .cell(name)
        .cell(static_cast<double>(s.requests_arrived), 0)
        .cell(static_cast<double>(s.requests_served), 0)
        .cell(static_cast<double>(s.deadline_drops), 0)
        .cell(static_cast<double>(s.requests_rejected), 0)
        .cell(s.requests_per_s, 1)
        .cell(s.latency_p50_s * 1e3, 2)
        .cell(s.latency_p99_s * 1e3, 2)
        .cell(s.batch_size_mean, 2)
        .cell(static_cast<double>(s.refreshes_adopted), 0)
        .cell(s.staleness_p50_s, 2)
        .cell(s.served_accuracy, 3);

    if (!scenarios.empty()) scenarios += ",\n";
    scenarios += "    {\n";
    scenarios += "      \"arrival\": \"" + std::string(name) + "\",\n";
    scenarios += "      \"rate_rps\": " + jnum(rate, 1) + ",\n";
    scenarios += "      \"requests_arrived\": " +
                 std::to_string(s.requests_arrived) + ",\n";
    scenarios += "      \"requests_admitted\": " +
                 std::to_string(s.requests_admitted) + ",\n";
    scenarios += "      \"requests_rejected\": " +
                 std::to_string(s.requests_rejected) + ",\n";
    scenarios += "      \"requests_served\": " +
                 std::to_string(s.requests_served) + ",\n";
    scenarios += "      \"deadline_drops\": " +
                 std::to_string(s.deadline_drops) + ",\n";
    scenarios += "      \"unserved_at_shutdown\": " +
                 std::to_string(s.unserved_at_shutdown) + ",\n";
    scenarios += "      \"batches\": " + std::to_string(s.batches) + ",\n";
    scenarios +=
        "      \"requests_per_s\": " + jnum(s.requests_per_s, 3) + ",\n";
    scenarios +=
        "      \"latency_p50_s\": " + jnum(s.latency_p50_s, 6) + ",\n";
    scenarios +=
        "      \"latency_p99_s\": " + jnum(s.latency_p99_s, 6) + ",\n";
    scenarios +=
        "      \"latency_mean_s\": " + jnum(s.latency_mean_s, 6) + ",\n";
    scenarios +=
        "      \"latency_max_s\": " + jnum(s.latency_max_s, 6) + ",\n";
    scenarios +=
        "      \"batch_size_mean\": " + jnum(s.batch_size_mean, 3) + ",\n";
    scenarios += "      \"batch_size_counts\": " +
                 jints(s.batch_size_counts) + ",\n";
    scenarios += "      \"refreshes_published\": " +
                 std::to_string(s.refreshes_published) + ",\n";
    scenarios += "      \"refreshes_adopted\": " +
                 std::to_string(s.refreshes_adopted) + ",\n";
    scenarios += "      \"stale_publishes_ignored\": " +
                 std::to_string(s.stale_publishes_ignored) + ",\n";
    scenarios += "      \"stale_batches\": " +
                 std::to_string(s.stale_batches) + ",\n";
    scenarios +=
        "      \"staleness_p50_s\": " + jnum(s.staleness_p50_s, 4) + ",\n";
    scenarios +=
        "      \"staleness_mean_s\": " + jnum(s.staleness_mean_s, 4) + ",\n";
    scenarios +=
        "      \"staleness_max_s\": " + jnum(s.staleness_max_s, 4) + ",\n";
    scenarios +=
        "      \"served_accuracy\": " + jnum(s.served_accuracy, 4) + ",\n";
    scenarios += "      \"pool_hits\": " + std::to_string(s.pool_hits) + ",\n";
    scenarios +=
        "      \"pool_misses\": " + std::to_string(s.pool_misses) + ",\n";
    scenarios += "      \"per_replica_served\": " +
                 jints(s.per_replica_served) + ",\n";
    scenarios += "      \"replica_machines\": " +
                 jsizes(s.replica_machines) + ",\n";
    scenarios += "      \"train_final_accuracy\": " +
                 jnum(res.final_accuracy, 4) + ",\n";
    scenarios += "      \"train_iterations\": " +
                 std::to_string(res.total_iterations) + ",\n";
    scenarios +=
        "      \"checksum\": \"" + hex64(stats_checksum(s)) + "\"\n";
    scenarios += "    }";
  }
  table.print(std::cout);

  const std::string out_path =
      ctx.config.get_string("out", "BENCH_serving.json");
  std::string doc = "{\n";
  doc += "  \"schema\": \"dlion-serving-v1\",\n";
  doc += "  \"environment\": \"" + env_name + "\",\n";
  doc += "  \"model\": \"" + workload.model + "\",\n";
  doc += "  \"duration_s\": " + jnum(duration, 1) + ",\n";
  doc += "  \"seed\": " + std::to_string(ctx.scale.seed) + ",\n";
  doc += "  \"replicas\": " + std::to_string(replicas) + ",\n";
  doc += "  \"scenarios\": [\n" + scenarios + "\n  ]\n";
  doc += "}\n";
  std::ofstream out(out_path);
  out << doc;
  out.close();
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

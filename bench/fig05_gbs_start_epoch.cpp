// Figure 5: final model accuracy when the global batch size is doubled
// beginning at different epochs of training. Doubling at epoch 0 or 1 hurts
// final accuracy; from epoch ~2 onwards the impact is stable - the two
// findings the GBS controller design rests on (§3.2).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header("Figure 5: accuracy vs GBS-doubling start epoch",
                      ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);

  const std::size_t n_workers = exp::kWorkers;
  const std::size_t lbs0 = 32;  // paper: initial LBS = 32
  const std::size_t gbs0 = lbs0 * n_workers;
  // Cluster-wide, every iteration consumes ~GBS samples, so one epoch is
  // dataset/GBS iterations per worker.
  const std::size_t train_size = workload.data.train.size();

  common::Table table({"doubling start epoch", "final accuracy"});
  std::vector<long long> starts = {0, 1, 2, 4, 8, -1};  // -1 = never
  for (long long start : starts) {
    exp::RunSpec spec = bench::make_run_spec(ctx.scale, "dlion", "Homo A",
                                             ctx.scale.duration_s);
    spec.extra_configure = [=](core::WorkerOptions& o) {
      o.gbs_schedule = [=](std::uint64_t iteration, double /*now*/) {
        if (start < 0) return gbs0;
        // Iterations before the doubling epoch run at gbs0.
        const std::uint64_t iters_per_epoch =
            std::max<std::uint64_t>(1, train_size / gbs0);
        return iteration >= static_cast<std::uint64_t>(start) *
                                iters_per_epoch
                   ? 2 * gbs0
                   : gbs0;
      };
      // Isolate the GBS effect: no DKT, no weighted update.
      o.dkt.mode = core::DktMode::kNone;
      o.weighted_update = false;
    };
    const exp::RunResult res = exp::run_experiment(spec, workload);
    table.row()
        .cell(start < 0 ? std::string("never") : std::to_string(start))
        .cell(res.final_accuracy, 3);
  }
  table.print(std::cout);
  std::cout << "\nPaper: accuracy is lower when GBS doubles at epoch 0 or 1; "
               "from epoch 2 onward the final accuracy no longer changes.\n";
  return 0;
}

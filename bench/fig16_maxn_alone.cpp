// Figure 16: the Max N=10 algorithm alone (no dynamic batching, no per-link
// adaptation, no DKT) compared with the four existing systems on both a
// homogeneous and a heterogeneous system environment.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const auto ctx = bench::BenchContext::from_args(argc, argv);
  bench::print_header(
      "Figure 16: Max10 alone vs existing systems", ctx.scale);
  const exp::Workload workload = exp::make_workload("cpu", ctx.scale);

  common::Table table({"environment", "system", "accuracy"});
  for (const std::string env : {"Homo A", "Hetero SYS A"}) {
    for (const std::string system :
         {"baseline", "hop", "gaia", "ako", "maxn"}) {
      const exp::RunResult res = exp::run_experiment(
          bench::make_run_spec(ctx.scale, system, env, ctx.scale.duration_s),
          workload);
      table.row().cell(env).cell(system == "maxn" ? "max10" : system)
          .cell(res.final_accuracy, 3);
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper: Max10 by itself outperforms the four "
               "state-of-the-art systems in both environments.\n";
  return 0;
}

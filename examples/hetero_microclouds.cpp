// Heterogeneous micro-clouds: build a custom geo-distributed deployment
// (three micro-clouds with different hardware, WAN links from the paper's
// Table 2 measurements between Amazon regions) and compare DLion against a
// baseline on it.
//
// This is the paper's motivating scenario (Fig. 1/3): workers inside a
// micro-cloud talk over LAN; micro-clouds are connected over WAN.
//
// Usage: hetero_microclouds [--duration=300] [--seed=42]
#include <iostream>

#include "common/config.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const common::Config cfg = common::Config::from_args(argc, argv);
  const exp::Scale scale = exp::Scale::from_config(cfg);
  const exp::Workload workload = exp::make_workload("cpu", scale);

  // Three micro-clouds of two workers each: a beefy one (24-core servers),
  // a mid-range one (12-core) and an edge-grade one (6-core).
  exp::Environment env;
  env.name = "3 micro-clouds (Virginia/Ireland/Mumbai)";
  for (double cores : {24.0, 24.0, 12.0, 12.0, 6.0, 6.0}) {
    env.compute.push_back(exp::cpu_cores(cores));
  }
  env.network_setup = [](sim::Network& net) {
    const auto& wan = exp::wan_bandwidth_matrix();
    // Workers 0-1 in Virginia (region 0), 2-3 in Ireland (2), 4-5 in
    // Mumbai (3). Same-cloud links stay LAN; cross-cloud links use the
    // measured WAN bandwidths and intercontinental latency.
    const std::size_t region[6] = {0, 0, 2, 2, 3, 3};
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 6; ++j) {
        if (i == j || region[i] == region[j]) continue;
        net.set_link(i, j, sim::Schedule(wan[region[i]][region[j]]));
        net.set_latency(i, j, 0.04);
      }
    }
  };

  std::cout << "Deployment: " << env.name << "\n"
            << "  workers 0-1: 24 cores (Virginia)\n"
            << "  workers 2-3: 12 cores (Ireland)\n"
            << "  workers 4-5:  6 cores (Mumbai)\n"
            << "  WAN links: paper Table 2 measurements, 40 ms latency\n\n";

  for (const std::string system : {"baseline", "dlion"}) {
    exp::RunSpec spec;
    spec.system = system;
    spec.env_override = env;
    spec.duration_s = scale.duration_s;
    spec.seed = scale.seed;
    spec.eval_period_iters = scale.eval_period_iters;
    spec.dkt_period_iters = scale.dkt_period_iters;
    const exp::RunResult res = exp::run_experiment(spec, workload);
    std::cout << system << ":\n"
              << "  accuracy after " << scale.duration_s
              << " s: " << res.final_accuracy << "\n"
              << "  worker accuracy stddev: " << res.accuracy_stddev << "\n"
              << "  iterations: " << res.total_iterations
              << ", bytes on the WAN+LAN: " << res.total_bytes << "\n";
  }
  std::cout << "\nDLion's per-link prioritized exchange fits each WAN link's "
               "capacity and its LBS controller matches batch sizes to each "
               "micro-cloud's hardware.\n";
  return 0;
}

// trace_explain: run one environment deterministically with the full
// observability stack attached and explain where the time went -- the
// critical path through the causal span/flow DAG, attributed to {compute,
// transfer, queue, stall, dkt} per worker and per link, plus the online
// watchdog's verdict.
//
// This is the "explaining a run" entry point from README.md: point it at a
// clean environment to see the straggler/bottleneck the paper's techniques
// chase, or at a churn environment (--churn) to watch the watchdog flag the
// run and the attribution shift toward queueing/stall.
//
// Usage:
//   trace_explain [--env="Hetero SYS A"] [--duration=120] [--epoch=0]
//                 [--churn] [--watchdog] [--summary-only] [--out-dir=DIR]
//
//   --env       Table 3 environment name (see exp/environments.h).
//   --duration  simulated seconds (default 120).
//   --epoch     per-epoch attribution window in simulated seconds
//               (default duration/10; 0 keeps the default).
//   --churn     overlay the PR-1 churn schedule (2 staggered crashes) on
//               the chosen environment and arm spike detectors.
//   --watchdog  arm the watchdog with default thresholds even without
//               --churn.
//   --summary-only
//               print only the attribution headline (straggler, bottleneck
//               link, category split) and the watchdog verdict; skips the
//               per-epoch table and all file exports. The CI-friendly mode:
//               a few lines of output no matter how big the run is.
//   --out-dir   also write critical_path.{json,txt}, trace.json (load in
//               Perfetto), and telemetry.json into DIR (ignored with
//               --summary-only).
#include <cstdio>
#include <iostream>
#include <string>

#include "common/config.h"
#include "exp/environments.h"
#include "exp/experiment.h"
#include "exp/report.h"
#include "obs/critical_path.h"
#include "obs/obs.h"
#include "obs/watchdog.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const common::Config cfg = common::Config::from_args(argc, argv);
  const std::string env_name = cfg.get_string("env", "Hetero SYS A");
  const double duration = cfg.get_double("duration", 120.0);
  const double epoch_arg = cfg.get_double("epoch", 0.0);
  const bool churn = cfg.get_bool("churn", false);
  const bool arm_watchdog = cfg.get_bool("watchdog", false) || churn;
  const bool summary_only = cfg.get_bool("summary-only", false);
  const std::string out_dir = cfg.get_string("out-dir", "");
  const double epoch_s = epoch_arg > 0.0 ? epoch_arg : duration / 10.0;

  exp::RunSpec spec;
  spec.system = "dlion";
  spec.duration_s = duration;
  if (churn) {
    // The PR-1 churn scenario scaled to this window: two staggered
    // crashes in the middle of the run, each down for a quarter of it.
    exp::ChurnSpec cs;
    cs.crashed_workers = 2;
    cs.crash_start_s = duration * 0.25;
    cs.downtime_s = duration * 0.25;
    cs.stagger_s = duration * 0.125;
    spec.env_override =
        exp::make_churn_environment(env_name, cs, duration / 3.0);
  } else {
    spec.env_override = exp::make_environment(env_name, duration / 3.0);
  }
  if (arm_watchdog) {
    obs::WatchdogConfig wd;  // defaults; churn trips the spike detectors
    wd.dead_letter_limit = 1;
    wd.dead_letter_window_s = duration;
    wd.drop_limit = 1;
    wd.drop_window_s = duration;
    wd.no_progress_window_s = duration;  // silent unless truly wedged
    spec.watchdog = wd;
  }

  auto obs = std::make_unique<obs::Observability>();
  spec.obs = obs.get();

  std::cout << "trace_explain: " << env_name << (churn ? " + churn" : "")
            << ", " << duration << " simulated s, seed " << spec.seed
            << "\n\n";
  const exp::Workload workload = exp::make_workload("cpu", exp::Scale{});
  const exp::RunResult result = exp::run_experiment(spec, workload);

  std::cout << "run: " << result.total_iterations << " iterations, "
            << result.total_bytes << " bytes exchanged, final accuracy "
            << result.final_accuracy << "\n\n";

  const obs::CriticalPathReport report =
      obs::compute_critical_path(obs->tracer(), {epoch_s});
  if (!report.valid) {
    std::cout << "no spans recorded -- was the build configured with "
                 "-DDLION_OBS=OFF?\n";
    return 0;
  }
  if (summary_only) {
    const obs::CriticalPathSummary s = obs::summary_of(report);
    std::cout << "critical path: " << s.total_s << " s\n"
              << "  straggler:  "
              << (s.straggler.empty() ? "(none)" : s.straggler) << "\n"
              << "  bottleneck: "
              << (report.bottleneck_link.empty() ? "(none)"
                                                 : report.bottleneck_link)
              << "\n";
    for (std::size_t c = 0; c < obs::kNumPathCategories; ++c) {
      const auto cat = static_cast<obs::PathCategory>(c);
      std::printf("  %-8s %6.1f%%\n", obs::path_category_name(cat),
                  report.category_fraction(cat) * 100.0);
    }
  } else {
    std::cout << report.attribution_table() << "\n";
  }

  if (arm_watchdog) {
    if (result.telemetry.watchdog_events.empty()) {
      std::cout << "watchdog: silent (no detector fired)\n";
    } else {
      std::cout << "watchdog: "
                << (result.telemetry.watchdog_aborted ? "ABORTED"
                                                      : "degraded")
                << "\n";
      for (const std::string& e : result.telemetry.watchdog_events) {
        std::cout << "  - " << e << "\n";
      }
    }
  }

  if (!out_dir.empty() && !summary_only) {
    try {
      exp::write_critical_path_json(report, out_dir + "/critical_path.json");
      exp::write_critical_path_table(report, out_dir + "/critical_path.txt");
      exp::write_chrome_trace(obs->tracer(), out_dir + "/trace.json");
      exp::write_telemetry_json(result.telemetry,
                                out_dir + "/telemetry.json");
      std::cout << "\nwrote " << out_dir
                << "/critical_path.{json,txt}, trace.json (load in "
                   "Perfetto), telemetry.json\n";
    } catch (const std::exception& e) {
      std::cerr << "export failed (" << e.what()
                << ") -- does the directory exist?\n";
      return 1;
    }
  }
  return 0;
}

// Custom strategy plugin: the paper's Table 1 point - a new distributed DL
// system drops into the DLion framework as a small
// `generate_partial_gradients` plugin. Here we implement "RandomK" (send a
// random k% of each variable's gradient entries - a common sparsification
// baseline from the gradient-compression literature) in a dozen lines and
// race it against DLion's Max N-based exchange.
//
// Usage: custom_strategy [--duration=300] [--fraction=0.05]
#include <iostream>

#include "common/config.h"
#include "common/rng.h"
#include "exp/experiment.h"

namespace {

using namespace dlion;

// The entire "new system": one strategy class.
class RandomKStrategy : public core::PartialGradientStrategy {
 public:
  RandomKStrategy(double fraction, std::uint64_t seed)
      : fraction_(fraction), rng_(seed) {}

  std::vector<comm::VariableGrad> generate(
      const nn::Model& model, const core::LinkContext&) override {
    std::vector<comm::VariableGrad> out;
    for (std::size_t v = 0; v < model.num_variables(); ++v) {
      const auto grad = model.variables()[v]->grad().span();
      comm::VariableGrad vg;
      vg.var_index = static_cast<std::uint32_t>(v);
      vg.dense_size = static_cast<std::uint32_t>(grad.size());
      std::vector<std::uint32_t> indices;
      std::vector<float> values;
      for (std::size_t i = 0; i < grad.size(); ++i) {
        if (rng_.bernoulli(fraction_)) {
          indices.push_back(static_cast<std::uint32_t>(i));
          values.push_back(grad[i]);
        }
      }
      vg.indices = indices;
      vg.values = values;
      out.push_back(std::move(vg));
    }
    return out;
  }
  const char* name() const override { return "randomk"; }

 private:
  double fraction_;
  common::Rng rng_;
};

}  // namespace

int main(int argc, char** argv) {
  const common::Config cfg = common::Config::from_args(argc, argv);
  const exp::Scale scale = exp::Scale::from_config(cfg);
  const double fraction = cfg.get_double("fraction", 0.05);
  const exp::Workload workload = exp::make_workload("cpu", scale);

  std::cout << "Custom plugin demo: RandomK (random " << fraction * 100
            << "% of entries) vs DLion's Max N exchange on Hetero NET A\n\n";

  // Plug RandomK into an otherwise-DLion-shaped system via the strategy
  // override; keep DLion's synchronization, no DKT so the gradient exchange
  // is the only difference.
  for (const bool use_randomk : {true, false}) {
    exp::RunSpec spec;
    spec.system = "maxn";  // fixed Max10 config as the comparison point
    spec.environment = "Hetero NET A";
    spec.duration_s = scale.duration_s;
    spec.seed = scale.seed;
    spec.eval_period_iters = scale.eval_period_iters;
    if (use_randomk) {
      spec.strategy_override = [&](std::size_t worker) -> core::StrategyPtr {
        return std::make_unique<RandomKStrategy>(fraction,
                                                 scale.seed + worker);
      };
    }
    const exp::RunResult res = exp::run_experiment(spec, workload);
    std::cout << (use_randomk ? "RandomK " : "Max10   ")
              << ": accuracy " << res.final_accuracy << ", bytes "
              << res.total_bytes << "\n";
  }
  std::cout << "\nMagnitude-based selection (Max N) beats random selection "
               "at similar traffic - the data quality assurance module's "
               "premise. Implementing RandomK took one ~25-line class "
               "(cf. paper Table 1).\n";
  return 0;
}

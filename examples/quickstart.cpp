// Quickstart: train a model with DLion on a simulated 6-worker micro-cloud.
//
// Walks the canonical API path: build a workload, pick an environment from
// the paper's Table 3, configure the DLion system from the registry, run,
// and read the metrics. Finishes in a few seconds of wall time while
// simulating 300 s of heterogeneous-cluster training.
//
// Usage: quickstart [--system=dlion] [--env=Hetero SYS A] [--duration=300]
#include <iostream>

#include "common/config.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const common::Config cfg = common::Config::from_args(argc, argv);
  const exp::Scale scale = exp::Scale::from_config(cfg);

  // 1. Workload: SynthCipher + Cipher by default; --workload=gpu selects
  //    SynthImageNet100 + MobileNet (the paper's GPU-cluster task).
  const exp::Workload workload =
      exp::make_workload(cfg.get_string("workload", "cpu"), scale);

  // 2. Experiment: DLion on a heterogeneous compute+network environment.
  exp::RunSpec spec;
  spec.system = cfg.get_string("system", "dlion");
  spec.environment = cfg.get_string("env", "Hetero SYS A");
  spec.duration_s = scale.duration_s;
  spec.seed = scale.seed;
  spec.eval_period_iters = scale.eval_period_iters;
  spec.dkt_period_iters = scale.dkt_period_iters;

  std::cout << "Training " << workload.model << " with " << spec.system
            << " on '" << spec.environment << "' for " << spec.duration_s
            << " simulated seconds...\n";

  const exp::RunResult result = exp::run_experiment(spec, workload);

  // 3. Metrics (§5.1.3 of the paper).
  std::cout << "final cluster-mean accuracy : " << result.final_accuracy
            << "\n"
            << "best accuracy along the run : " << result.best_accuracy
            << "\n"
            << "accuracy stddev (workers)   : " << result.accuracy_stddev
            << "\n"
            << "time to 70% accuracy        : " << result.time_to_70 << " s\n"
            << "total iterations            : " << result.total_iterations
            << "\n"
            << "total bytes on the network  : " << result.total_bytes << "\n";

  std::cout << "\naccuracy curve (time_s, mean_accuracy):\n";
  const auto& pts = result.mean_curve.points();
  const std::size_t stride = pts.empty() ? 1 : std::max<std::size_t>(1, pts.size() / 12);
  for (std::size_t i = 0; i < pts.size(); i += stride) {
    std::cout << "  " << pts[i].time << "\t" << pts[i].value << "\n";
  }
  return 0;
}

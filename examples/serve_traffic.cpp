// Serving a trained model: co-simulate an inference tier with training.
//
// A DLion training run on a heterogeneous micro-cloud publishes weight
// snapshots every 10 simulated seconds; three serving replicas — placed on
// the fastest machines, fed by a deterministic Poisson/bursty/diurnal
// request stream, batched dynamically — adopt each snapshot over the comm
// fabric and answer requests with progressively fresher weights.
//
// Usage: serve_traffic [--arrival=poisson|bursty|diurnal] [--rate=300]
//                      [--replicas=3] [--duration=300] [--seed=42]
#include <iostream>

#include "common/config.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const common::Config cfg = common::Config::from_args(argc, argv);
  const exp::Scale scale = exp::Scale::from_config(cfg);
  const exp::Workload workload = exp::make_workload("cpu", scale);

  // 1. Training side: DLion on the paper's Table-3 "Hetero SYS A".
  exp::RunSpec spec;
  spec.system = "dlion";
  spec.environment = "Hetero SYS A";
  spec.duration_s = scale.duration_s;
  spec.seed = scale.seed;
  spec.eval_period_iters = scale.eval_period_iters;
  spec.dkt_period_iters = scale.dkt_period_iters;

  // 2. Serving side: replicas, arrival process, batching, refresh cadence.
  serve::ServingSpec serving;
  serving.replicas = static_cast<std::size_t>(cfg.get_int("replicas", 3));
  serving.arrival.rate_rps = cfg.get_double("rate", 300.0);
  const std::string arrival = cfg.get_string("arrival", "poisson");
  if (arrival == "bursty") {
    serving.arrival.kind = serve::ArrivalKind::kBursty;
  } else if (arrival == "diurnal") {
    serving.arrival.kind = serve::ArrivalKind::kDiurnal;
  }
  spec.serving = serving;

  std::cout << "Training " << workload.model << " on '" << spec.environment
            << "' while serving " << arrival << " traffic at "
            << serving.arrival.rate_rps << " req/s across "
            << serving.replicas << " replicas...\n";

  const exp::RunResult result = exp::run_experiment(spec, workload);
  const serve::ServingStats& s = *result.serving;

  // 3. Serving metrics: latency, throughput, batching, refresh staleness.
  std::cout << "requests arrived / served   : " << s.requests_arrived << " / "
            << s.requests_served << "\n"
            << "deadline drops / rejected   : " << s.deadline_drops << " / "
            << s.requests_rejected << "\n"
            << "throughput                  : " << s.requests_per_s
            << " req/s\n"
            << "latency p50 / p99           : " << s.latency_p50_s * 1e3
            << " / " << s.latency_p99_s * 1e3 << " ms\n"
            << "mean batch size             : " << s.batch_size_mean << "\n"
            << "refreshes published/adopted : " << s.refreshes_published
            << " / " << s.refreshes_adopted << "\n"
            << "weight staleness p50 / max  : " << s.staleness_p50_s << " / "
            << s.staleness_max_s << " s\n"
            << "served accuracy             : " << s.served_accuracy << "\n"
            << "trained accuracy (cluster)  : " << result.final_accuracy
            << "\n";

  std::cout << "\nper-replica requests served (replica -> machine):\n";
  for (std::size_t r = 0; r < s.per_replica_served.size(); ++r) {
    std::cout << "  replica " << r << " on machine "
              << s.replica_machines[r] << " : " << s.per_replica_served[r]
              << "\n";
  }
  return 0;
}

// Dynamic resources: watch DLion's controllers react while compute capacity
// and network bandwidth fluctuate mid-training (the paper's §5.2.6
// scenario). Prints the LBS trace and per-link partial gradient sizes
// around each resource change.
//
// Usage: dynamic_resources [--duration=400] [--seed=42]
#include <iostream>

#include "common/config.h"
#include "common/table.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const common::Config cfg = common::Config::from_args(argc, argv);
  exp::Scale scale = exp::Scale::from_config(cfg);
  const double duration = cfg.get_double("duration", 400.0);
  const exp::Workload workload = exp::make_workload("cpu", scale);

  // Worker 0 loses half its cores at t = duration/2; everyone's bandwidth
  // drops from 100 to 25 Mbps in the middle half of the run.
  core::ClusterSpec spec;
  spec.model = workload.model;
  spec.seed = scale.seed;
  spec.compute.push_back(exp::cpu_cores(
      sim::Schedule{{0.0, 24.0}, {duration / 2, 12.0}}));
  for (int i = 0; i < 5; ++i) spec.compute.push_back(exp::cpu_cores(24.0));
  spec.network_setup = [&](sim::Network& net) {
    for (std::size_t w = 0; w < 6; ++w) {
      net.set_egress(w, sim::Schedule{{0.0, 100.0},
                                      {duration / 4, 25.0},
                                      {3 * duration / 4, 100.0}});
    }
  };
  spec.duration_s = duration;
  const systems::SystemSpec system = systems::make_system("dlion");
  spec.strategy_factory = system.strategy_factory;
  core::WorkerOptions options;
  options.learning_rate = workload.learning_rate;
  options.eval_period_iters = scale.eval_period_iters;
  system.configure(options);
  options.dkt.period_iters = scale.dkt_period_iters;
  options.batch_update_period_s = duration / 40.0;
  spec.worker_options = options;

  core::Cluster cluster(spec, workload.data.train, workload.data.test);
  cluster.run();

  std::cout << "DLion under dynamic resources (worker0 24->12 cores at t="
            << duration / 2 << "s; egress 100->25->100 Mbps):\n\n";
  common::Table table({"time(s)", "worker0 LBS", "worker1 LBS",
                       "grads/send w1->w2", "accuracy"});
  const sim::Trace accuracy = cluster.mean_accuracy_trace();
  for (double t = duration / 10; t <= duration; t += duration / 10) {
    table.row()
        .cell(t, 0)
        .cell(cluster.worker(0).lbs_trace().value_at(t), 0)
        .cell(cluster.worker(1).lbs_trace().value_at(t), 0)
        .cell(cluster.worker(1).entries_trace(2).value_at(t), 0)
        .cell(accuracy.value_at(t), 3);
  }
  table.print(std::cout);
  std::cout << "\nThe LBS controller shifts batch from worker0 to its peers "
               "after the capacity drop; the link prioritizer shrinks "
               "partial gradients while bandwidth is scarce and re-expands "
               "them afterwards.\n";
  return 0;
}

// Dynamic resources: watch DLion's controllers react while compute capacity
// and network bandwidth fluctuate mid-training (the paper's §5.2.6
// scenario). Prints the LBS trace and per-link partial gradient sizes
// around each resource change.
//
// Usage: dynamic_resources [--duration=400] [--seed=42]
#include <iostream>

#include "common/config.h"
#include "common/table.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  using namespace dlion;
  const common::Config cfg = common::Config::from_args(argc, argv);
  exp::Scale scale = exp::Scale::from_config(cfg);
  const double duration = cfg.get_double("duration", 400.0);
  const exp::Workload workload = exp::make_workload("cpu", scale);

  // Worker 0 loses half its cores at t = duration/2; everyone's bandwidth
  // drops from 100 to 25 Mbps in the middle half of the run.
  core::ClusterSpec spec;
  spec.model = workload.model;
  spec.seed = scale.seed;
  spec.compute.push_back(exp::cpu_cores(
      sim::Schedule{{0.0, 24.0}, {duration / 2, 12.0}}));
  for (int i = 0; i < 5; ++i) spec.compute.push_back(exp::cpu_cores(24.0));
  spec.network_setup = [&](sim::Network& net) {
    for (std::size_t w = 0; w < 6; ++w) {
      net.set_egress(w, sim::Schedule{{0.0, 100.0},
                                      {duration / 4, 25.0},
                                      {3 * duration / 4, 100.0}});
    }
  };
  spec.duration_s = duration;
  const systems::SystemSpec system = systems::make_system("dlion");
  spec.strategy_factory = system.strategy_factory;
  core::WorkerOptions options;
  options.learning_rate = workload.learning_rate;
  options.eval_period_iters = scale.eval_period_iters;
  system.configure(options);
  options.dkt.period_iters = scale.dkt_period_iters;
  options.batch_update_period_s = duration / 40.0;
  spec.worker_options = options;

  core::Cluster cluster(spec, workload.data.train, workload.data.test);
  cluster.run();

  std::cout << "DLion under dynamic resources (worker0 24->12 cores at t="
            << duration / 2 << "s; egress 100->25->100 Mbps):\n\n";
  common::Table table({"time(s)", "worker0 LBS", "worker1 LBS",
                       "grads/send w1->w2", "accuracy"});
  const sim::Trace accuracy = cluster.mean_accuracy_trace();
  for (double t = duration / 10; t <= duration; t += duration / 10) {
    table.row()
        .cell(t, 0)
        .cell(cluster.worker(0).lbs_trace().value_at(t), 0)
        .cell(cluster.worker(1).lbs_trace().value_at(t), 0)
        .cell(cluster.worker(1).entries_trace(2).value_at(t), 0)
        .cell(accuracy.value_at(t), 3);
  }
  table.print(std::cout);
  std::cout << "\nThe LBS controller shifts batch from worker0 to its peers "
               "after the capacity drop; the link prioritizer shrinks "
               "partial gradients while bandwidth is scarce and re-expands "
               "them afterwards.\n";

  // --- Scaling a run mid-flight (README walkthrough). --------------------
  // The roster itself now changes: 4 of 8 slots start live, workers 4 and 5
  // join mid-run (each bootstrapping its weights from two live peers), and
  // worker 2 leaves later. Every change bumps the roster epoch and
  // renormalizes GBS/LBS over the live set.
  core::ClusterSpec espec;
  espec.model = workload.model;
  espec.seed = scale.seed;
  for (int i = 0; i < 8; ++i) espec.compute.push_back(exp::cpu_cores(24.0));
  espec.duration_s = duration;
  espec.strategy_factory = system.strategy_factory;
  espec.worker_options = options;
  core::ElasticSpec elastic;
  elastic.initial_workers = 4;
  elastic.membership.schedule.join(4, 0.25 * duration)
      .join(5, 0.35 * duration)
      .leave(2, 0.65 * duration);
  espec.elastic = std::move(elastic);

  core::Cluster ecluster(espec, workload.data.train, workload.data.test);
  ecluster.run();

  std::cout << "\nScaling the run mid-flight (8 slots, 4 live; worker4 "
            << "joins at t=" << 0.25 * duration << "s, worker5 at t="
            << 0.35 * duration << "s, worker2 leaves at t="
            << 0.65 * duration << "s):\n\n";
  common::Table etable({"time(s)", "worker0 LBS", "worker2 LBS",
                        "worker4 LBS", "accuracy"});
  const sim::Trace eaccuracy = ecluster.mean_accuracy_trace();
  for (double t = duration / 10; t <= duration; t += duration / 10) {
    etable.row()
        .cell(t, 0)
        .cell(ecluster.worker(0).lbs_trace().value_at(t), 0)
        .cell(ecluster.worker(2).lbs_trace().value_at(t), 0)
        .cell(ecluster.worker(4).lbs_trace().value_at(t), 0)
        .cell(eaccuracy.value_at(t), 3);
  }
  etable.print(std::cout);

  const core::ElasticStats stats = ecluster.membership()->stats();
  std::cout << "\nroster: " << stats.joins << " joins, " << stats.leaves
            << " leaves, final epoch " << stats.epoch << ", "
            << stats.final_members << " members at the end\n";
  for (const core::JoinRecord& rec : stats.join_log) {
    std::cout << "  worker" << rec.worker << " joined at t=" << rec.requested
              << "s, bootstrapped " << rec.bootstrap_bytes << " bytes from "
              << rec.donors << " peers";
    if (rec.completed >= 0.0) {
      std::cout << " in " << rec.completed - rec.requested << "s";
    }
    std::cout << "\n";
  }
  std::cout << "\nEach joiner announces the new roster epoch, pulls disjoint "
               "variable ranges from two live peers, and starts training at "
               "the adopted iteration; the leaver's batch share is folded "
               "back into the survivors, so the LBS columns renormalize at "
               "every membership change.\n";
  return 0;
}

// dlion-lint v2 scope model.
//
// A lightweight symbol table built from the token stream: which classes a
// file declares, their data members (with type text and any DLION_*
// thread-safety annotations attached to the declarator), and the typed
// local/global variables of each function. This is a heuristic declaration
// scanner, not a parser — it segments statements at ; { } and access
// specifiers, skips keyword-led statements, and reads "type tokens then
// declarator" declarations. That is enough for the semantic rules (payload
// escape, unannotated mutex, atomic RMW ordering, raw thread, lock RAII),
// which only need to resolve an identifier to the declared type text.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"

namespace dlion_lint {

struct VarDecl {
  std::string type;  // canonicalized type text, e.g. "std::atomic<int>"
  std::string name;
  int line = 0;
  bool is_static = false;              // static storage (member or local)
  std::vector<std::string> annotations;  // e.g. "DLION_GUARDED_BY(mu_)"
};

struct ClassInfo {
  std::string name;
  int line = 0;
  std::vector<VarDecl> members;
};

struct ScopeModel {
  std::vector<ClassInfo> classes;
  // Variables declared at namespace scope (globals) and function-local
  // variables, pooled: the rules only need name -> type resolution plus
  // the static/global distinction carried on each VarDecl.
  std::vector<VarDecl> globals;  // namespace-scope and static locals
  std::vector<VarDecl> locals;   // automatic function-local variables

  /// Resolve `name` to its declared type text; precedence locals, then
  /// members of any class, then globals. Empty string when unknown.
  std::string type_of(const std::string& name) const;
};

/// Build the model from a token stream.
ScopeModel build_scope_model(const std::vector<Token>& tokens);

// --- type classifiers shared by the semantic rules ------------------------
bool is_mutex_type(const std::string& type);        // std or common::Mutex
bool is_std_mutex_type(const std::string& type);    // std:: family only
bool is_atomic_type(const std::string& type);
bool is_payload_type(const std::string& type);
bool is_thread_type(const std::string& type);

}  // namespace dlion_lint

#include "scope_model.h"

#include <algorithm>
#include <cstddef>
#include <set>

namespace dlion_lint {
namespace {

// Keywords that can never begin a variable declaration we care about. A
// statement led by one of these is skipped wholesale.
const std::set<std::string>& bail_keywords() {
  static const std::set<std::string> kSet = {
      "if",       "for",      "while",    "switch",   "return",  "delete",
      "new",      "throw",    "case",     "goto",     "break",   "continue",
      "do",       "else",     "public",   "private",  "protected",
      "operator", "template", "using",    "typedef",  "friend",
      "static_assert", "namespace", "class", "struct", "enum",   "union",
      "sizeof",   "co_return", "co_await", "co_yield", "default", "asm",
      "export",   "requires", "concept",  "try",      "catch",
  };
  return kSet;
}

// Storage/placement qualifiers skipped (and in static's case, recorded)
// before the type begins.
const std::set<std::string>& qualifier_keywords() {
  static const std::set<std::string> kSet = {
      "static",   "constexpr", "constinit", "inline",   "mutable",
      "thread_local", "extern", "const",    "volatile", "virtual",
      "explicit", "typename",  "register",  "alignas",
  };
  return kSet;
}

bool is_annotation_ident(const std::string& text) {
  if (text.rfind("DLION_", 0) != 0) return false;
  return std::all_of(text.begin() + 6, text.end(), [](char c) {
    return (c >= 'A' && c <= 'Z') || c == '_' ||
           (c >= '0' && c <= '9');
  });
}

bool is_word(const Token& t) { return t.kind == TokenKind::kIdentifier; }

// Append a token to canonical type text: no space around scope/template/
// pointer punctuation, a single space between adjacent words.
void append_type_token(std::string& type, const Token& t,
                       const Token* prev) {
  if (!type.empty() && prev != nullptr && is_word(*prev) && is_word(t)) {
    type += ' ';
  }
  type += t.text;
}

// Capture "NAME(...)" annotation text starting at tokens[i] (NAME), with
// i advanced past the closing paren. Returns empty if no paren follows.
std::string capture_annotation(const std::vector<Token>& toks,
                               std::size_t& i) {
  std::string text = toks[i].text;
  if (i + 1 >= toks.size() || toks[i + 1].text != "(") {
    ++i;
    return std::string();
  }
  i += 1;  // at '('
  int depth = 0;
  for (; i < toks.size(); ++i) {
    text += toks[i].text;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")") {
      --depth;
      if (depth == 0) {
        ++i;
        break;
      }
    }
  }
  return text;
}

struct Statement {
  std::vector<Token> toks;
  std::string terminator;  // ";", "{", "}", ":" (access spec) or "" at EOF
};

// Try to read "qualifiers type declarator ..." out of a statement.
// `in_function_scope` disambiguates `T name(...)`: a variable with ctor
// arguments inside a function, a function declaration elsewhere.
bool parse_decl(const Statement& st, bool in_function_scope, VarDecl& out) {
  const auto& toks = st.toks;
  std::size_t k = 0;
  bool is_static = false;
  while (k < toks.size() && is_word(toks[k]) &&
         qualifier_keywords().count(toks[k].text) != 0) {
    if (toks[k].text == "static") is_static = true;
    const bool has_args = toks[k].text == "alignas";
    ++k;
    if (has_args && k < toks.size() && toks[k].text == "(") {
      int depth = 0;
      for (; k < toks.size(); ++k) {
        if (toks[k].text == "(") ++depth;
        if (toks[k].text == ")" && --depth == 0) {
          ++k;
          break;
        }
      }
    }
  }
  if (k >= toks.size()) return false;
  if (!is_word(toks[k]) && toks[k].text != "::") return false;
  if (is_word(toks[k]) && bail_keywords().count(toks[k].text) != 0) {
    return false;
  }

  // Greedily consume the type-and-declarator run; remember token indices.
  std::vector<std::size_t> run;
  int name_line = 0;
  while (k < toks.size()) {
    const Token& t = toks[k];
    if (t.kind == TokenKind::kDirective) {
      ++k;
      continue;
    }
    if (is_word(t)) {
      if (is_annotation_ident(t.text) && k + 1 < toks.size() &&
          toks[k + 1].text == "(") {
        break;  // annotation macro, not part of the declarator
      }
      if (bail_keywords().count(t.text) != 0 && t.text != "const") break;
      run.push_back(k++);
      continue;
    }
    if (t.text == "::" || t.text == "*" || t.text == "&" ||
        t.text == "&&") {
      run.push_back(k++);
      continue;
    }
    if (t.text == "<") {
      // Balanced template argument list ('>>' closes two levels).
      int depth = 0;
      std::size_t j = k;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">") --depth;
        if (toks[j].text == ">>") depth -= 2;
        if (depth <= 0) break;
      }
      if (j >= toks.size() || depth < 0) return false;  // not a type
      for (std::size_t m = k; m <= j; ++m) run.push_back(m);
      k = j + 1;
      continue;
    }
    break;
  }
  if (run.size() < 2) return false;

  // The declarator name is the last word in the run that sits outside
  // template arguments and is not a scope-qualified type component.
  std::ptrdiff_t name_pos = -1;
  int angle = 0;
  for (std::size_t m = 0; m < run.size(); ++m) {
    const Token& t = toks[run[m]];
    if (t.text == "<") ++angle;
    if (t.text == ">") --angle;
    if (t.text == ">>") angle -= 2;
    if (angle != 0 || !is_word(t)) continue;
    const bool qualified = m > 0 && toks[run[m - 1]].text == "::";
    const bool qualifies = m + 1 < run.size() &&
                           toks[run[m + 1]].text == "::";
    if (!qualified && !qualifies && m > 0) name_pos = static_cast<std::ptrdiff_t>(m);
  }
  if (name_pos <= 0) return false;
  const Token& name_tok = toks[run[static_cast<std::size_t>(name_pos)]];
  name_line = name_tok.line;

  // `T name(...)` outside a function body is a function declaration.
  const std::size_t after = static_cast<std::size_t>(
      run[static_cast<std::size_t>(name_pos)] + 1);
  if (after < toks.size() && toks[after].text == "(" &&
      !in_function_scope) {
    return false;
  }

  std::string type;
  const Token* prev = nullptr;
  for (std::ptrdiff_t m = 0; m < name_pos; ++m) {
    const Token& t = toks[run[static_cast<std::size_t>(m)]];
    append_type_token(type, t, prev);
    prev = &t;
  }
  if (type.empty()) return false;

  out.type = type;
  out.name = name_tok.text;
  out.line = name_line;
  out.is_static = is_static;
  out.annotations.clear();
  for (std::size_t j = after; j < toks.size();) {
    if (is_word(toks[j]) && is_annotation_ident(toks[j].text)) {
      std::string ann = capture_annotation(toks, j);
      if (!ann.empty()) out.annotations.push_back(std::move(ann));
      continue;
    }
    ++j;
  }
  return true;
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock, kSkip } kind;
  std::size_t class_index = 0;  // valid when kind == kClass
};

}  // namespace

std::string ScopeModel::type_of(const std::string& name) const {
  for (auto it = locals.rbegin(); it != locals.rend(); ++it) {
    if (it->name == name) return it->type;
  }
  for (const ClassInfo& c : classes) {
    for (const VarDecl& m : c.members) {
      if (m.name == name) return m.type;
    }
  }
  for (const VarDecl& g : globals) {
    if (g.name == name) return g.type;
  }
  return std::string();
}

ScopeModel build_scope_model(const std::vector<Token>& tokens) {
  ScopeModel model;
  std::vector<Scope> stack;

  auto in_function = [&stack] {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == Scope::kFunction) return true;
      if (it->kind == Scope::kClass || it->kind == Scope::kNamespace) {
        return false;
      }
    }
    return false;
  };
  auto in_skip = [&stack] {
    return !stack.empty() && stack.back().kind == Scope::kSkip;
  };

  std::size_t i = 0;
  while (i < tokens.size()) {
    // Collect one statement up to a top-level ; { or }.
    Statement st;
    int paren = 0;
    int brack = 0;
    bool saw_top_paren = false;
    while (i < tokens.size()) {
      const Token& t = tokens[i];
      if (t.kind == TokenKind::kDirective) {
        ++i;
        continue;
      }
      if (t.text == "(") {
        if (paren == 0 && brack == 0) saw_top_paren = true;
        ++paren;
      }
      if (t.text == ")") paren = std::max(0, paren - 1);
      if (t.text == "[") ++brack;
      if (t.text == "]") brack = std::max(0, brack - 1);
      // `T name{...}` / `T arr[] = {...}`: a brace *initializer*, not a
      // scope. Skip its balanced braces and keep collecting toward the ';'
      // so the declaration still models (e.g. an atomic member with a
      // default value). Scope-opening heads and anything with a top-level
      // '(' (function definitions, ctor init lists) are excluded.
      if (paren == 0 && brack == 0 && t.text == "{" && !st.toks.empty() &&
          !saw_top_paren &&
          (is_word(st.toks.back()) || st.toks.back().text == "=")) {
        const std::string& head = st.toks.front().text;
        const bool scope_head =
            head == "namespace" || head == "class" || head == "struct" ||
            head == "enum" || head == "union" || head == "template" ||
            head == "extern" || bail_keywords().count(head) != 0;
        if (!scope_head) {
          int bd = 0;
          while (i < tokens.size()) {
            if (tokens[i].text == "{") ++bd;
            if (tokens[i].text == "}" && --bd == 0) {
              ++i;
              break;
            }
            ++i;
          }
          continue;
        }
      }
      if (paren == 0 && brack == 0 &&
          (t.text == ";" || t.text == "{" || t.text == "}")) {
        st.terminator = t.text;
        ++i;
        break;
      }
      if (paren == 0 && brack == 0 && t.text == ":" &&
          st.toks.size() == 1 && is_word(st.toks[0]) &&
          (st.toks[0].text == "public" || st.toks[0].text == "private" ||
           st.toks[0].text == "protected")) {
        st.terminator = ":";
        ++i;
        break;
      }
      st.toks.push_back(t);
      ++i;
    }

    if (st.terminator == ":") continue;  // access specifier

    if (st.terminator == "}") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }

    // Strip a leading `template <...>` so templated classes still model.
    std::vector<Token>* toks = &st.toks;
    std::vector<Token> stripped;
    if (!toks->empty() && (*toks)[0].text == "template") {
      std::size_t j = 1;
      if (j < toks->size() && (*toks)[j].text == "<") {
        int depth = 0;
        for (; j < toks->size(); ++j) {
          if ((*toks)[j].text == "<") ++depth;
          if ((*toks)[j].text == ">") --depth;
          if ((*toks)[j].text == ">>") depth -= 2;
          if (depth <= 0) {
            ++j;
            break;
          }
        }
      }
      stripped.assign(toks->begin() + static_cast<std::ptrdiff_t>(j),
                      toks->end());
      toks = &stripped;
    }

    if (st.terminator == "{") {
      if (in_skip()) {
        stack.push_back({Scope::kSkip, 0});
        continue;
      }
      const std::string head =
          toks->empty() ? std::string() : (*toks)[0].text;
      if (head == "namespace") {
        stack.push_back({Scope::kNamespace, 0});
      } else if (head == "class" || head == "struct") {
        // Class head: name is the last word before the base-clause colon
        // (skipping annotation-macro arguments), `final` excluded.
        ClassInfo info;
        int angle = 0;
        int cparen = 0;
        for (std::size_t m = 1; m < toks->size(); ++m) {
          const Token& t = (*toks)[m];
          if (t.text == "(") ++cparen;
          if (t.text == ")") cparen = std::max(0, cparen - 1);
          if (t.text == "<") ++angle;
          if (t.text == ">") --angle;
          if (t.text == ">>") angle -= 2;
          if (cparen == 0 && angle == 0 && t.text == ":") break;
          if (cparen == 0 && angle == 0 && is_word(t) &&
              t.text != "final" && !is_annotation_ident(t.text)) {
            info.name = t.text;
            info.line = t.line;
          }
        }
        model.classes.push_back(std::move(info));
        stack.push_back({Scope::kClass, model.classes.size() - 1});
      } else if (head == "enum" || head == "union") {
        stack.push_back({Scope::kSkip, 0});
      } else {
        const bool has_paren = std::any_of(
            toks->begin(), toks->end(),
            [](const Token& t) { return t.text == "("; });
        const bool fn_position =
            stack.empty() || stack.back().kind == Scope::kNamespace ||
            stack.back().kind == Scope::kClass;
        if (has_paren && fn_position &&
            bail_keywords().count(head) == 0) {
          stack.push_back({Scope::kFunction, 0});
          // Model the parameter list: each top-level comma segment inside
          // the first paren group is itself a "type declarator" phrase, so
          // receiver resolution works on parameters too.
          std::size_t p0 = 0;
          while (p0 < toks->size() && (*toks)[p0].text != "(") ++p0;
          std::vector<Token> param;
          int pdepth = 0;
          auto flush_param = [&] {
            if (param.empty()) return;
            Statement pst;
            pst.toks = std::move(param);
            param.clear();
            VarDecl pdecl;
            if (parse_decl(pst, true, pdecl)) {
              model.locals.push_back(std::move(pdecl));
            }
          };
          for (std::size_t m = p0; m < toks->size(); ++m) {
            const std::string& tx = (*toks)[m].text;
            if (tx == "(") {
              if (++pdepth == 1) continue;  // the opening paren itself
            } else if (tx == ")") {
              if (--pdepth == 0) {
                flush_param();
                break;
              }
            } else if (tx == "," && pdepth == 1) {
              flush_param();
              continue;
            }
            param.push_back((*toks)[m]);
          }
        } else {
          stack.push_back({Scope::kBlock, 0});
        }
      }
      continue;
    }

    // terminator ";" (or EOF): candidate declaration.
    if (toks->empty() || in_skip()) continue;
    Statement parsed;
    parsed.toks = *toks;
    VarDecl decl;
    const bool fn_scope = in_function();
    if (!parse_decl(parsed, fn_scope, decl)) continue;
    if (!stack.empty() && stack.back().kind == Scope::kClass) {
      model.classes[stack.back().class_index].members.push_back(
          std::move(decl));
    } else if (fn_scope && !decl.is_static) {
      model.locals.push_back(std::move(decl));
    } else {
      model.globals.push_back(std::move(decl));
    }
  }
  return model;
}

bool is_std_mutex_type(const std::string& type) {
  for (const char* t :
       {"std::mutex", "std::shared_mutex", "std::recursive_mutex",
        "std::timed_mutex", "std::shared_timed_mutex",
        "std::recursive_timed_mutex"}) {
    if (type.find(t) != std::string::npos) return true;
  }
  return false;
}

bool is_mutex_type(const std::string& type) {
  if (is_std_mutex_type(type)) return true;
  // common::Mutex in any qualification, or unqualified inside the library.
  if (type == "Mutex" || type == "common::Mutex" ||
      type == "dlion::common::Mutex") {
    return true;
  }
  return type.size() > 7 &&
         type.compare(type.size() - 7, 7, "::Mutex") == 0;
}

bool is_atomic_type(const std::string& type) {
  return type.find("std::atomic") != std::string::npos;
}

bool is_payload_type(const std::string& type) {
  return type.find("Payload<") != std::string::npos ||
         type.find("WeightPayload") != std::string::npos ||
         type.find("PayloadHandle") != std::string::npos;
}

bool is_thread_type(const std::string& type) {
  return type.find("std::thread") != std::string::npos ||
         type.find("std::jthread") != std::string::npos;
}

}  // namespace dlion_lint

#include "lexer.h"

#include <array>
#include <cctype>

namespace dlion_lint {

// ---------------------------------------------------------------------------
// v1 text view: strip comments and string/char literals while keeping
// byte-for-byte line structure, so diagnostics point at real lines and rules
// never fire on prose. Raw strings are handled; escapes inside literals too.
// Moved verbatim from the v1 single-TU linter — text-rule diagnostics must
// stay bit-identical (tested against a committed golden transcript).
// ---------------------------------------------------------------------------
std::string strip_comments_and_strings(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // delimiter for the active raw string literal
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < src.size() && src[j] != '(') raw_delim += src[j++];
          state = State::kRawString;
          out += ' ';  // for 'R'
          out += ' ';  // for '"'
          for (std::size_t k = 0; k < raw_delim.size() + 1 && i + 2 + k < src.size();
               ++k) {
            out += src[i + 2 + k] == '\n' ? '\n' : ' ';
          }
          i = j;  // now positioned at '('
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += ' ';
          if (next != '\0') {
            out += next == '\n' ? '\n' : ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += ' ';
          if (next != '\0') {
            out += ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kRawString: {
        // Look for )delim"
        if (c == ')' &&
            src.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < src.size() &&
            src[i + 1 + raw_delim.size()] == '"') {
          for (std::size_t k = 0; k < raw_delim.size() + 2; ++k) {
            out += src[i + k] == '\n' ? '\n' : ' ';
          }
          i += raw_delim.size() + 1;
          state = State::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

// ---------------------------------------------------------------------------
// v2 token stream
// ---------------------------------------------------------------------------
namespace {

/// Cursor over the source that transparently applies phase-2 line splicing
/// (backslash-newline removed) *except* inside raw string literals, where
/// the standard reverts it. Physical line numbers are tracked through both.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) { skip_splices(); }

  bool eof() const { return i_ >= s_.size(); }
  int line() const { return line_; }

  /// Current character ('\0' at EOF).
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

  /// k-th character ahead, splice-aware (0 = current).
  char peek_ahead(std::size_t k) const {
    std::size_t j = i_;
    for (std::size_t n = 0; n < k; ++n) {
      if (j >= s_.size()) return '\0';
      ++j;
      j = splice_target(j);
    }
    return j < s_.size() ? s_[j] : '\0';
  }

  /// Consume one character (splice-aware unless raw mode is on).
  void advance() {
    if (i_ >= s_.size()) return;
    if (s_[i_] == '\n') ++line_;
    ++i_;
    skip_splices();
  }

  /// Raw mode: no splicing (inside raw string literals).
  void set_raw(bool raw) {
    raw_ = raw;
    if (!raw_) skip_splices();
  }

 private:
  /// Position after any run of backslash-newline sequences starting at j.
  std::size_t splice_target(std::size_t j) const {
    if (raw_) return j;
    while (j + 1 < s_.size() && s_[j] == '\\' &&
           (s_[j + 1] == '\n' ||
            (s_[j + 1] == '\r' && j + 2 < s_.size() && s_[j + 2] == '\n'))) {
      j += s_[j + 1] == '\n' ? 2 : 3;
    }
    return j;
  }

  void skip_splices() {
    if (raw_) return;
    while (i_ + 1 < s_.size() && s_[i_] == '\\' &&
           (s_[i_ + 1] == '\n' ||
            (s_[i_ + 1] == '\r' && i_ + 2 < s_.size() && s_[i_ + 2] == '\n'))) {
      i_ += s_[i_ + 1] == '\n' ? 2 : 3;
      ++line_;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool raw_ = false;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators, longest first (maximal munch).
constexpr std::array<const char*, 25> kPuncts = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "^=",  "&=", "|="};

}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> tokens;
  Cursor cur(src);
  bool bol = true;  // at beginning of (logical) line, whitespace aside

  auto push = [&tokens](TokenKind kind, std::string text, int line) {
    tokens.push_back(Token{kind, std::move(text), line});
  };

  // Consume a non-raw string/char literal body (opening quote consumed).
  auto consume_quoted = [&cur](char quote, std::string& text) {
    while (!cur.eof()) {
      const char c = cur.peek();
      if (c == '\\') {
        text += c;
        cur.advance();
        if (!cur.eof()) {
          text += cur.peek();
          cur.advance();
        }
        continue;
      }
      text += c;
      cur.advance();
      if (c == quote || c == '\n') break;  // newline: unterminated literal
    }
  };

  // Consume a raw string literal; cursor sits on the opening '"'.
  auto consume_raw_string = [&cur](std::string& text) {
    text += cur.peek();  // '"'
    cur.advance();
    std::string delim;
    while (!cur.eof() && cur.peek() != '(') {
      delim += cur.peek();
      text += cur.peek();
      cur.advance();
    }
    cur.set_raw(true);  // splicing reverts inside the raw body
    const std::string close = ")" + delim + "\"";
    std::string window;
    while (!cur.eof()) {
      text += cur.peek();
      window += cur.peek();
      if (window.size() > close.size()) window.erase(window.begin());
      cur.advance();
      if (window == close) break;
    }
    cur.set_raw(false);
  };

  while (!cur.eof()) {
    const char c = cur.peek();
    const int line = cur.line();

    if (c == '\n') {
      bol = true;
      cur.advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    // Comments.
    if (c == '/' && cur.peek_ahead(1) == '/') {
      while (!cur.eof() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (c == '/' && cur.peek_ahead(1) == '*') {
      cur.advance();
      cur.advance();
      while (!cur.eof() &&
             !(cur.peek() == '*' && cur.peek_ahead(1) == '/')) {
        cur.advance();
      }
      cur.advance();
      cur.advance();
      continue;
    }
    // Preprocessor directive: '#' (or digraph '%:') first on the line.
    // Captured as one token so macro bodies never read as code; splices
    // keep multi-line defines inside the single directive.
    if (bol && (c == '#' || (c == '%' && cur.peek_ahead(1) == ':'))) {
      cur.advance();
      if (c == '%') cur.advance();
      while (!cur.eof() && (cur.peek() == ' ' || cur.peek() == '\t')) {
        cur.advance();
      }
      std::string name;
      while (!cur.eof() && ident_char(cur.peek())) {
        name += cur.peek();
        cur.advance();
      }
      while (!cur.eof() && cur.peek() != '\n') cur.advance();
      push(TokenKind::kDirective, std::move(name), line);
      bol = true;
      continue;
    }
    bol = false;
    if (c == '"') {
      std::string text(1, '"');
      cur.advance();
      consume_quoted('"', text);
      push(TokenKind::kString, std::move(text), line);
      continue;
    }
    if (c == '\'') {
      std::string text(1, '\'');
      cur.advance();
      consume_quoted('\'', text);
      push(TokenKind::kChar, std::move(text), line);
      continue;
    }
    if (ident_start(c)) {
      std::string text;
      while (!cur.eof() && ident_char(cur.peek())) {
        text += cur.peek();
        cur.advance();
      }
      // A literal prefix is an identifier-shaped run attached directly to
      // the opening quote: R"...", u8"...", LR"...", L'x'.
      const bool raw_prefix = text == "R" || text == "u8R" || text == "uR" ||
                              text == "UR" || text == "LR";
      const bool enc_prefix =
          text == "u8" || text == "u" || text == "U" || text == "L";
      if (raw_prefix && cur.peek() == '"') {
        consume_raw_string(text);
        push(TokenKind::kString, std::move(text), line);
        continue;
      }
      if (enc_prefix && cur.peek() == '"') {
        text += '"';
        cur.advance();
        consume_quoted('"', text);
        push(TokenKind::kString, std::move(text), line);
        continue;
      }
      if (enc_prefix && text != "u8" && cur.peek() == '\'') {
        text += '\'';
        cur.advance();
        consume_quoted('\'', text);
        push(TokenKind::kChar, std::move(text), line);
        continue;
      }
      push(TokenKind::kIdentifier, std::move(text), line);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(
                         cur.peek_ahead(1))))) {
      std::string text;
      char prev = '\0';
      while (!cur.eof()) {
        const char d = cur.peek();
        const bool sign_ok = (d == '+' || d == '-') &&
                             (prev == 'e' || prev == 'E' || prev == 'p' ||
                              prev == 'P');
        if (!(ident_char(d) || d == '.' || d == '\'' || sign_ok)) break;
        text += d;
        prev = d;
        cur.advance();
      }
      push(TokenKind::kNumber, std::move(text), line);
      continue;
    }
    // Digraphs, normalized to the primary spelling.
    if (c == '<' && cur.peek_ahead(1) == '%') {
      cur.advance();
      cur.advance();
      push(TokenKind::kPunct, "{", line);
      continue;
    }
    if (c == '%' && cur.peek_ahead(1) == '>') {
      cur.advance();
      cur.advance();
      push(TokenKind::kPunct, "}", line);
      continue;
    }
    if (c == ':' && cur.peek_ahead(1) == '>') {
      cur.advance();
      cur.advance();
      push(TokenKind::kPunct, "]", line);
      continue;
    }
    if (c == '%' && cur.peek_ahead(1) == ':') {
      // %:%: is the ## digraph ('%:' alone as '#' only appears at bol and
      // was handled by the directive branch above).
      if (cur.peek_ahead(2) == '%' && cur.peek_ahead(3) == ':') {
        for (int n = 0; n < 4; ++n) cur.advance();
        push(TokenKind::kPunct, "##", line);
      } else {
        cur.advance();
        cur.advance();
        push(TokenKind::kPunct, "#", line);
      }
      continue;
    }
    if (c == '<' && cur.peek_ahead(1) == ':') {
      // [lex.pptoken]: '<:' is '[' unless followed by a ':' that is not
      // itself followed by ':' or '>' — so 'vector<::ns::T>' lexes as
      // '<' '::', not '[' ':'.
      const char c2 = cur.peek_ahead(2);
      const char c3 = cur.peek_ahead(3);
      if (c2 == ':' && c3 != ':' && c3 != '>') {
        cur.advance();
        push(TokenKind::kPunct, "<", line);
      } else {
        cur.advance();
        cur.advance();
        push(TokenKind::kPunct, "[", line);
      }
      continue;
    }
    // Multi-character punctuators (maximal munch), then single characters.
    {
      bool matched = false;
      for (const char* p : kPuncts) {
        const std::size_t len = std::char_traits<char>::length(p);
        bool ok = true;
        for (std::size_t n = 0; n < len; ++n) {
          if (cur.peek_ahead(n) != p[n]) {
            ok = false;
            break;
          }
        }
        if (ok) {
          for (std::size_t n = 0; n < len; ++n) cur.advance();
          push(TokenKind::kPunct, p, line);
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    push(TokenKind::kPunct, std::string(1, c), line);
    cur.advance();
  }
  return tokens;
}

}  // namespace dlion_lint

#include "lint_types.h"

namespace dlion_lint {

bool line_allows(const FileContext& ctx, int line, const std::string& rule) {
  auto it = ctx.inline_allows.find(line);
  if (it == ctx.inline_allows.end()) return false;
  return it->second.count("*") != 0 || it->second.count(rule) != 0;
}

void emit(Emit diags, const FileContext& ctx, int line, std::string rule,
          std::string message) {
  if (line_allows(ctx, line, rule)) return;
  diags.push_back({ctx.rel_path, line, std::move(rule), std::move(message)});
}

}  // namespace dlion_lint

// dlion-lint rule registry.
//
// Text rules are the original v1 set: regexes over the stripped-line view,
// moved verbatim so their diagnostics stay byte-identical (guarded by the
// golden-transcript equivalence test). Semantic rules are the v2 additions:
// they walk the token stream and scope model, which lets them resolve a
// receiver identifier to its declared type — something line regexes cannot.
#pragma once

#include "lint_types.h"

namespace dlion_lint {

// --- v1 text rules --------------------------------------------------------
void rule_unordered_iteration(const FileContext& ctx, Emit diags);
void rule_entropy(const FileContext& ctx, Emit diags);
void rule_pointer_key(const FileContext& ctx, Emit diags);
void rule_float_accumulate(const FileContext& ctx, Emit diags);
void rule_missing_override(const FileContext& ctx, Emit diags);
void rule_uninit_pod(const FileContext& ctx, Emit diags);
void rule_owned_payload(const FileContext& ctx, Emit diags);

// --- v2 semantic rules ----------------------------------------------------
void rule_payload_escape(const FileContext& ctx, Emit diags);
void rule_unannotated_mutex(const FileContext& ctx, Emit diags);
void rule_atomic_rmw_order(const FileContext& ctx, Emit diags);
void rule_raw_thread(const FileContext& ctx, Emit diags);
void rule_lock_no_raii(const FileContext& ctx, Emit diags);

/// Run every rule of the respective family over one file.
void run_text_rules(const FileContext& ctx, Emit diags);
void run_semantic_rules(const FileContext& ctx, Emit diags);

}  // namespace dlion_lint

// dlion-lint v2 lexer.
//
// Two views of a C++ source file:
//
//  * strip_comments_and_strings() / split_lines(): the v1 text view —
//    comments and literals blanked, byte-for-byte line structure kept.
//    The regex-based text rules scan this; the implementation is the v1
//    algorithm moved verbatim, so v1 diagnostics stay bit-identical.
//
//  * lex(): the v2 token stream. Real tokens with physical line numbers,
//    handling the lexical corners the line-oriented pass could not:
//    backslash-newline continuations (spliced, with tokens attributed to
//    their *starting* physical line), raw string literals with arbitrary
//    delimiters, digraphs (`<%` `%>` `<:` `:>` `%:` normalized to the
//    primary spelling, including the `<::` disambiguation), and
//    preprocessor directives (captured as one kDirective token so macro
//    bodies never masquerade as code). The scope model and every semantic
//    rule are built on this stream.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dlion_lint {

// --- v1 text view (byte-compatible with the original linter) -------------
std::string strip_comments_and_strings(const std::string& src);
std::vector<std::string> split_lines(const std::string& text);

// --- v2 token stream ------------------------------------------------------
enum class TokenKind {
  kIdentifier,  // identifiers and keywords (rules distinguish by text)
  kNumber,      // pp-number (integer/float literal, suffixes included)
  kPunct,       // operator/punctuator, digraphs normalized ("{", "::", ...)
  kString,      // string literal, prefixes/raw form included; text = lexeme
  kChar,        // character literal
  kDirective,   // whole preprocessor directive; text = directive name
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  // 1-based physical line of the token's first character
};

/// Tokenize `src`. Never throws; unterminated literals/comments end the
/// token they started. Comments and whitespace produce no tokens.
std::vector<Token> lex(const std::string& src);

}  // namespace dlion_lint

// dlion-lint: a purpose-built determinism and concurrency linter for the
// DLion tree.
//
// The simulator's headline guarantee is bit-identical runs: same seed, same
// outputs, independent of thread count, observability mode, or host. Most
// regressions against that guarantee come from a small set of C++ patterns
// that are individually innocent-looking:
//
//   * iterating an unordered associative container and feeding the visit
//     order into JSON/CSV/checksum output,
//   * reaching for OS entropy or wall clocks (`rand()`, `std::random_device`,
//     `time(nullptr)`, `std::chrono::system_clock`) instead of the seeded
//     `common::Rng` / virtual sim clock,
//   * ordering work by pointer value (`std::map<T*, ...>` iterates in
//     allocation order, which ASLR randomizes per process),
//   * floating-point `std::accumulate` outside the tensor library, where
//     summation order is an explicit, tested contract,
//   * wire/config structs with uninitialized POD members (uninitialized
//     padding or fields encode garbage → nondeterministic bytes), and
//   * `virtual` redeclarations in derived types missing `override` (silent
//     signature drift breaks the strategy plugins in ways only visible as
//     behavioral divergence).
//
// v2 adds a real tokenizer, a brace/scope tracker, and a lightweight symbol
// table (lexer.cpp / scope_model.cpp), on top of which five semantic rules
// audit the concurrency and lifetime contracts the thread-safety
// annotations (src/common/annotations.h) enforce at compile time under
// Clang — so the invariants hold on GCC-only hosts too:
//
//   * payload views escaping into static storage or raw-pointer members,
//   * std::mutex where common::Mutex (capability-annotated) is required,
//     and mutexes that guard no annotated state,
//   * atomic RMW with defaulted/strengthened memory order,
//   * raw std::thread construction or .detach() outside the pool,
//   * bare lock()/unlock() instead of RAII critical sections.
//
// General-purpose tools either cannot see these (clang-tidy has no notion of
// "this TU writes run artifacts") or are unavailable in the build image. The
// v1 text rules are preserved byte-for-byte (rules/text_rules.cpp; an
// equivalence test pins their output). False-positive escape hatches, in
// priority order:
//
//   1. inline: append `// dlion-lint: allow(<rule-id>)` to the line,
//   2. per-file: add `<rule-id> <path-substring>` to the allowlist file.
//
// Allowlist hygiene is itself checked: an entry whose path matches scanned
// files but which suppressed nothing is reported as dlion-stale-allowlist
// (dead suppressions otherwise hide future regressions silently).
//
// Output is clang-style `file:line: error: message [rule-id]` on stdout plus
// an optional machine-readable JSON report (--json). Exit codes: 0 clean,
// 1 diagnostics emitted, 2 usage/IO error. Diagnostics are emitted in
// sorted (file, line, rule) order so the output is itself deterministic.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint_types.h"
#include "rules.h"

namespace fs = std::filesystem;

namespace dlion_lint {
namespace {

struct Options {
  fs::path root;                  // repo root; paths are reported relative
  std::vector<fs::path> targets;  // files or directories to scan
  fs::path allowlist_path;
  fs::path json_path;
  bool verbose = false;
  bool text_rules_only = false;  // v1 compatibility mode
  bool stale_check = true;       // report dead allowlist entries
};

const std::regex kArtifactWriter(
    R"(\b(?:to_json|write_json|json_escape|to_csv|write_csv|csv|checksum|fnv1a|Telemetry|MetricsRegistry|export_chrome_trace|std::ofstream)\b)",
    std::regex::icase);

const std::regex kInlineAllow(R"(dlion-lint:\s*allow\(([^)]*)\))");

FileContext load_file(const fs::path& path, const fs::path& root,
                      bool build_semantic_view) {
  FileContext ctx;
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  ctx.rel_path = (ec ? path : rel).generic_string();
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string src = buf.str();
  ctx.raw = split_lines(src);
  ctx.code = split_lines(strip_comments_and_strings(src));
  ctx.writes_artifacts = std::regex_search(src, kArtifactWriter);
  ctx.in_tensor_lib = ctx.rel_path.find("src/tensor/") != std::string::npos ||
                      ctx.rel_path.rfind("tensor/", 0) == 0;
  ctx.is_header = path.extension() == ".h" || path.extension() == ".hpp" ||
                  path.extension() == ".inl";
  for (std::size_t i = 0; i < ctx.raw.size(); ++i) {
    std::smatch m;
    if (std::regex_search(ctx.raw[i], m, kInlineAllow)) {
      std::set<std::string>& rules = ctx.inline_allows[static_cast<int>(i) + 1];
      std::string list = m[1].str();
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        std::string rule = list.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        // trim
        while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.front())))
          rule.erase(rule.begin());
        while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.back())))
          rule.pop_back();
        if (!rule.empty()) rules.insert(rule);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
  }
  if (build_semantic_view) {
    ctx.tokens = lex(src);
    ctx.model = build_scope_model(ctx.tokens);
  }
  return ctx;
}

std::vector<AllowEntry> load_allowlist(const fs::path& path) {
  std::vector<AllowEntry> entries;
  if (path.empty()) return entries;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "dlion-lint: cannot open allowlist " << path << "\n";
    std::exit(2);
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    AllowEntry e;
    if (ls >> e.rule >> e.path_substring) {
      e.line = line_no;
      entries.push_back(e);
    }
  }
  return entries;
}

/// Index of the first allowlist entry matching the diagnostic, or -1.
int allowlisted(const std::vector<AllowEntry>& allow, const Diagnostic& d) {
  for (std::size_t i = 0; i < allow.size(); ++i) {
    const AllowEntry& e = allow[i];
    if ((e.rule == "*" || e.rule == d.rule) &&
        d.file.find(e.path_substring) != std::string::npos) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json_report(const fs::path& path,
                       const std::vector<Diagnostic>& diags,
                       std::size_t files_scanned) {
  std::ofstream out(path, std::ios::binary);
  out << "{\n  \"version\": 1,\n  \"files_scanned\": " << files_scanned
      << ",\n  \"diagnostic_count\": " << diags.size()
      << ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << json_escape(d.file) << "\", \"line\": "
        << d.line << ", \"rule\": \"" << json_escape(d.rule)
        << "\", \"message\": \"" << json_escape(d.message) << "\"}";
  }
  out << (diags.empty() ? "]" : "\n  ]") << "\n}\n";
}

void usage() {
  std::cerr
      << "usage: dlion-lint [--root DIR] [--allowlist FILE] [--json FILE]\n"
         "                  [--text-rules-only] [--no-stale-check]\n"
         "                  [--verbose] [PATH...]\n"
         "Scans PATH (default: <root>/src) for nondeterminism hazards.\n"
         "Exit: 0 clean, 1 diagnostics found, 2 usage/IO error.\n";
}

bool is_cxx_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp" || ext == ".inl";
}

int run(int argc, char** argv) {
  Options opt;
  opt.root = fs::current_path();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "dlion-lint: " << flag << " requires a value\n";
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opt.root = need_value("--root");
    } else if (arg == "--allowlist") {
      opt.allowlist_path = need_value("--allowlist");
    } else if (arg == "--json") {
      opt.json_path = need_value("--json");
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--text-rules-only") {
      opt.text_rules_only = true;
    } else if (arg == "--no-stale-check") {
      opt.stale_check = false;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dlion-lint: unknown flag " << arg << "\n";
      usage();
      return 2;
    } else {
      opt.targets.emplace_back(arg);
    }
  }
  if (opt.targets.empty()) opt.targets.push_back(opt.root / "src");

  // Collect files in sorted order so scan (and report) order is stable.
  std::vector<fs::path> files;
  for (const fs::path& target : opt.targets) {
    std::error_code ec;
    if (fs::is_directory(target, ec)) {
      for (fs::recursive_directory_iterator it(target, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file() && is_cxx_source(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(target, ec)) {
      files.push_back(target);
    } else {
      std::cerr << "dlion-lint: no such file or directory: " << target << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const std::vector<AllowEntry> allow = load_allowlist(opt.allowlist_path);

  std::vector<Diagnostic> diags;
  std::vector<std::string> scanned_paths;
  for (const fs::path& file : files) {
    const FileContext ctx = load_file(file, opt.root, !opt.text_rules_only);
    scanned_paths.push_back(ctx.rel_path);
    if (opt.verbose) std::cerr << "dlion-lint: scanning " << ctx.rel_path << "\n";
    run_text_rules(ctx, diags);
    if (!opt.text_rules_only) run_semantic_rules(ctx, diags);
  }
  std::vector<std::size_t> suppressed_by(allow.size(), 0);
  diags.erase(std::remove_if(diags.begin(), diags.end(),
                             [&](const Diagnostic& d) {
                               const int e = allowlisted(allow, d);
                               if (e < 0) return false;
                               ++suppressed_by[static_cast<std::size_t>(e)];
                               return true;
                             }),
              diags.end());

  // Dead-suppression detection: an entry whose path substring matched at
  // least one scanned file yet suppressed nothing no longer corresponds to
  // any diagnostic — it would silently swallow the next real finding.
  // Entries touching no scanned file are skipped (a partial-tree scan says
  // nothing about them).
  if (opt.stale_check && !opt.allowlist_path.empty()) {
    std::error_code ec;
    fs::path rel = fs::relative(opt.allowlist_path, opt.root, ec);
    const std::string allow_rel =
        (ec ? opt.allowlist_path : rel).generic_string();
    for (std::size_t e = 0; e < allow.size(); ++e) {
      if (suppressed_by[e] != 0) continue;
      const bool in_scope = std::any_of(
          scanned_paths.begin(), scanned_paths.end(),
          [&](const std::string& p) {
            return p.find(allow[e].path_substring) != std::string::npos;
          });
      if (!in_scope) continue;
      diags.push_back(
          {allow_rel, allow[e].line, "dlion-stale-allowlist",
           "allowlist entry '" + allow[e].rule + " " +
               allow[e].path_substring +
               "' suppressed no diagnostic in the scanned files; delete "
               "it (dead suppressions hide future regressions)"});
    }
  }
  std::sort(diags.begin(), diags.end());

  for (const Diagnostic& d : diags) {
    std::cout << d.file << ":" << d.line << ": error: " << d.message << " ["
              << d.rule << "]\n";
  }
  if (!opt.json_path.empty()) {
    write_json_report(opt.json_path, diags, files.size());
  }
  if (diags.empty()) {
    std::cout << "dlion-lint: " << files.size() << " files clean\n";
    return 0;
  }
  std::cout << "dlion-lint: " << diags.size() << " diagnostic(s) in "
            << files.size() << " file(s)\n";
  return 1;
}

}  // namespace
}  // namespace dlion_lint

int main(int argc, char** argv) { return dlion_lint::run(argc, argv); }

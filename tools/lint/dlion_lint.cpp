// dlion-lint: a purpose-built determinism linter for the DLion tree.
//
// The simulator's headline guarantee is bit-identical runs: same seed, same
// outputs, independent of thread count, observability mode, or host. Most
// regressions against that guarantee come from a small set of C++ patterns
// that are individually innocent-looking:
//
//   * iterating an unordered associative container and feeding the visit
//     order into JSON/CSV/checksum output,
//   * reaching for OS entropy or wall clocks (`rand()`, `std::random_device`,
//     `time(nullptr)`, `std::chrono::system_clock`) instead of the seeded
//     `common::Rng` / virtual sim clock,
//   * ordering work by pointer value (`std::map<T*, ...>` iterates in
//     allocation order, which ASLR randomizes per process),
//   * floating-point `std::accumulate` outside the tensor library, where
//     summation order is an explicit, tested contract,
//   * wire/config structs with uninitialized POD members (uninitialized
//     padding or fields encode garbage → nondeterministic bytes), and
//   * `virtual` redeclarations in derived types missing `override` (silent
//     signature drift breaks the strategy plugins in ways only visible as
//     behavioral divergence).
//
// General-purpose tools either cannot see these (clang-tidy has no notion of
// "this TU writes run artifacts") or are unavailable in the build image, so
// this linter implements them as text-level rules: comments and string
// literals are stripped (line structure preserved), then each rule scans the
// remaining code. False-positive escape hatches, in priority order:
//
//   1. inline: append `// dlion-lint: allow(<rule-id>)` to the line,
//   2. per-file: add `<rule-id> <path-substring>` to the allowlist file.
//
// Output is clang-style `file:line: error: message [rule-id]` on stdout plus
// an optional machine-readable JSON report (--json). Exit codes: 0 clean,
// 1 diagnostics emitted, 2 usage/IO error. Diagnostics are emitted in
// sorted (file, line, rule) order so the output is itself deterministic.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Diagnostic {
  std::string file;  // path relative to --root (stable across machines)
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

struct AllowEntry {
  std::string rule;  // "*" matches every rule
  std::string path_substring;
};

struct Options {
  fs::path root;                  // repo root; paths are reported relative
  std::vector<fs::path> targets;  // files or directories to scan
  fs::path allowlist_path;
  fs::path json_path;
  bool verbose = false;
};

// ---------------------------------------------------------------------------
// Source preprocessing: strip comments and string/char literals while keeping
// byte-for-byte line structure, so diagnostics point at real lines and rules
// never fire on prose. Raw strings are handled; escapes inside literals too.
// ---------------------------------------------------------------------------
std::string strip_comments_and_strings(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // delimiter for the active raw string literal
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < src.size() && src[j] != '(') raw_delim += src[j++];
          state = State::kRawString;
          out += ' ';  // for 'R'
          out += ' ';  // for '"'
          for (std::size_t k = 0; k < raw_delim.size() + 1 && i + 2 + k < src.size();
               ++k) {
            out += src[i + 2 + k] == '\n' ? '\n' : ' ';
          }
          i = j;  // now positioned at '('
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += ' ';
          if (next != '\0') {
            out += next == '\n' ? '\n' : ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += ' ';
          if (next != '\0') {
            out += ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kRawString: {
        // Look for )delim"
        if (c == ')' &&
            src.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < src.size() &&
            src[i + 1 + raw_delim.size()] == '"') {
          for (std::size_t k = 0; k < raw_delim.size() + 2; ++k) {
            out += src[i + k] == '\n' ? '\n' : ' ';
          }
          i += raw_delim.size() + 1;
          state = State::kCode;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------
struct FileContext {
  std::string rel_path;               // reported path
  std::vector<std::string> raw;       // original lines (for suppressions)
  std::vector<std::string> code;      // stripped lines (rules scan these)
  bool writes_artifacts = false;      // TU emits JSON/CSV/checksum output
  bool in_tensor_lib = false;         // under src/tensor/
  bool is_header = false;
  // Line numbers (1-based) carrying `// dlion-lint: allow(rule)` markers,
  // mapped to the set of rule ids allowed on that line ("*" = all).
  std::map<int, std::set<std::string>> inline_allows;
};

bool line_allows(const FileContext& ctx, int line, const std::string& rule) {
  auto it = ctx.inline_allows.find(line);
  if (it == ctx.inline_allows.end()) return false;
  return it->second.count("*") != 0 || it->second.count(rule) != 0;
}

using Emit = std::vector<Diagnostic>&;

void emit(Emit diags, const FileContext& ctx, int line, std::string rule,
          std::string message) {
  if (line_allows(ctx, line, rule)) return;
  diags.push_back({ctx.rel_path, line, std::move(rule), std::move(message)});
}

// Rule: dlion-nondet-unordered-iteration
// Collect identifiers declared with std::unordered_{map,set} anywhere in the
// file, then flag range-for loops or .begin()/.end()/iterator walks over them
// — but only in TUs that also write run artifacts (JSON/CSV/checksums),
// because that's where visit order becomes observable output.
void rule_unordered_iteration(const FileContext& ctx, Emit diags) {
  static const std::regex decl_re(
      R"(std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s*>?\s*([A-Za-z_]\w*)\s*[;{=\(])");
  static const std::regex member_re(
      R"(std::unordered_(?:map|set|multimap|multiset)\s*<.*>\s+([A-Za-z_]\w*)_?\s*;)");
  std::set<std::string> unordered_names;
  for (const std::string& line : ctx.code) {
    for (auto it = std::sregex_iterator(line.begin(), line.end(), decl_re);
         it != std::sregex_iterator(); ++it) {
      unordered_names.insert((*it)[1].str());
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), member_re);
         it != std::sregex_iterator(); ++it) {
      unordered_names.insert((*it)[1].str());
    }
  }
  if (unordered_names.empty()) return;
  if (!ctx.writes_artifacts) return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    for (const std::string& name : unordered_names) {
      const std::regex range_for(R"(for\s*\([^;)]*:\s*)" + name + R"(\b)");
      const std::regex begin_walk("\\b" + name + R"((?:_)?\s*\.\s*(?:c?begin|c?end)\s*\()");
      if (std::regex_search(line, range_for) ||
          std::regex_search(line, begin_walk)) {
        emit(diags, ctx, static_cast<int>(i) + 1,
             "dlion-nondet-unordered-iteration",
             "iteration over unordered container '" + name +
                 "' in a TU that writes JSON/CSV/checksum output; visit "
                 "order is hash-seed dependent - use a sorted container or "
                 "sort keys first");
      }
    }
  }
}

// Rule: dlion-nondet-entropy
// OS entropy / wall-clock time sources. Allowed only via allowlist (the
// seeded RNG implementation and bench timers).
void rule_entropy(const FileContext& ctx, Emit diags) {
  struct Pattern {
    std::regex re;
    const char* what;
  };
  static const std::vector<Pattern> patterns = [] {
    std::vector<Pattern> p;
    p.push_back({std::regex(R"(\bstd::random_device\b)"),
                 "std::random_device draws OS entropy"});
    p.push_back({std::regex(R"((?:^|[^:\w])rand\s*\(\s*\))"),
                 "rand() is seeded from process state"});
    p.push_back({std::regex(R"((?:^|[^:\w])s?rand\s*\(\s*time\s*\()"),
                 "time-seeded rand()"});
    p.push_back({std::regex(R"(\btime\s*\(\s*(?:nullptr|NULL|0)\s*\))"),
                 "time(nullptr) reads the wall clock"});
    p.push_back({std::regex(R"(\bstd::chrono::(?:system|steady|high_resolution)_clock\b)"),
                 "host clocks vary per run; use the sim virtual clock"});
    p.push_back({std::regex(R"(\bgettimeofday\s*\()"),
                 "gettimeofday reads the wall clock"});
    return p;
  }();
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    for (const Pattern& p : patterns) {
      if (std::regex_search(ctx.code[i], p.re)) {
        emit(diags, ctx, static_cast<int>(i) + 1, "dlion-nondet-entropy",
             std::string(p.what) +
                 "; deterministic replays require common::Rng / sim time");
      }
    }
  }
}

// Rule: dlion-nondet-pointer-key
// Ordered containers keyed by pointer compare allocation addresses, which
// ASLR randomizes; iteration order then differs between runs.
void rule_pointer_key(const FileContext& ctx, Emit diags) {
  static const std::regex re(
      R"(\bstd::(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*)");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (std::regex_search(ctx.code[i], re)) {
      emit(diags, ctx, static_cast<int>(i) + 1, "dlion-nondet-pointer-key",
           "ordered container keyed by pointer value; iteration order "
           "follows ASLR-randomized addresses - key by a stable id instead");
    }
  }
}

// Rule: dlion-nondet-float-accumulate
// Floating-point accumulation order is a tested contract owned by
// src/tensor; ad-hoc std::accumulate over floats elsewhere invites
// reassociation drift when someone later parallelizes or reorders.
void rule_float_accumulate(const FileContext& ctx, Emit diags) {
  if (ctx.in_tensor_lib) return;
  static const std::regex re(
      R"(\bstd::accumulate\s*\([^;]*[,(]\s*(?:0\.\d*f?|\d+\.\d*f|0\.f|(?:float|double)\s*[{(]))");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (std::regex_search(ctx.code[i], re)) {
      emit(diags, ctx, static_cast<int>(i) + 1,
           "dlion-nondet-float-accumulate",
           "floating-point std::accumulate outside src/tensor; summation "
           "order is a determinism contract - use the tensor reductions");
    }
  }
}

// Rule: dlion-missing-override
// Inside a class/struct that names a base (`: public Base`), a `virtual`
// method declaration without `override`/`final` silently stops overriding
// when the base signature changes. (Pure-virtual base declarations live in
// classes without bases and are not flagged.)
void rule_missing_override(const FileContext& ctx, Emit diags) {
  static const std::regex class_with_base(
      R"(\b(?:class|struct)\s+[A-Za-z_]\w*(?:\s+final)?\s*:\s*(?:public|protected|private)\b)");
  static const std::regex virtual_decl(R"(\bvirtual\b)");
  static const std::regex has_override(R"(\boverride\b|\bfinal\b|\s*=\s*0)");
  static const std::regex dtor(R"(\bvirtual\s+~)");
  int depth = 0;
  int derived_depth = -1;  // brace depth at which the derived class body opened
  bool pending_derived = false;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (std::regex_search(line, class_with_base)) pending_derived = true;
    for (char c : line) {
      if (c == '{') {
        ++depth;
        if (pending_derived && derived_depth < 0) {
          derived_depth = depth;
          pending_derived = false;
        }
      } else if (c == '}') {
        if (derived_depth == depth) derived_depth = -1;
        --depth;
      }
    }
    if (derived_depth > 0 && depth >= derived_depth &&
        std::regex_search(line, virtual_decl) &&
        !std::regex_search(line, has_override) &&
        !std::regex_search(line, dtor)) {
      emit(diags, ctx, static_cast<int>(i) + 1, "dlion-missing-override",
           "'virtual' in a derived class without 'override'; base-signature "
           "drift would silently fork behavior - mark it override");
    }
  }
}

// Rule: dlion-uninit-pod
// Wire-message and config structs must brace- or equals-initialize every
// POD member: an uninitialized field encodes stack garbage, which is the
// definition of nondeterministic bytes on the wire / in run artifacts.
void rule_uninit_pod(const FileContext& ctx, Emit diags) {
  const bool is_message_or_config =
      ctx.rel_path.find("message") != std::string::npos ||
      ctx.rel_path.find("config") != std::string::npos;
  if (!is_message_or_config || !ctx.is_header) return;
  static const std::regex struct_open(R"(\b(?:struct|class)\s+[A-Za-z_]\w*)");
  static const std::regex pod_member_no_init(
      R"(^\s*(?:float|double|bool|char|(?:unsigned\s+)?(?:int|long|short)|std::size_t|std::u?int(?:8|16|32|64)_t|common::(?:SimTime|Bytes|Seconds))\s+[A-Za-z_]\w*\s*;\s*$)");
  int depth = 0;
  int struct_depth = -1;
  bool pending_struct = false;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (std::regex_search(line, struct_open)) pending_struct = true;
    if (struct_depth > 0 && depth >= struct_depth &&
        std::regex_match(line, pod_member_no_init)) {
      emit(diags, ctx, static_cast<int>(i) + 1, "dlion-uninit-pod",
           "uninitialized POD member in a wire/config struct; garbage bytes "
           "are nondeterministic - add '= 0' / '{}' default");
    }
    for (char c : line) {
      if (c == '{') {
        ++depth;
        if (pending_struct && struct_depth < 0) {
          struct_depth = depth;
          pending_struct = false;
        }
      } else if (c == '}') {
        if (struct_depth == depth) struct_depth = -1;
        --depth;
      }
    }
  }
}

// Rule: dlion-owned-payload
// Data-lane messages under comm/ carry comm::Payload views into refcounted
// arena blocks (DESIGN.md "Zero-copy data plane"); an owned
// std::vector<float> / std::vector<std::uint32_t> payload member - or
// growing a payload element-wise via push_back/insert/assign - reintroduces
// the per-message copies the zero-copy refactor eliminated. Member
// declarations are audited in headers (where the wire structs live);
// element-wise growth is flagged everywhere under comm/. The codec boundary
// legitimately materializes owned bytes and escapes with
// `// dlion-lint: allow(dlion-owned-payload)`.
void rule_owned_payload(const FileContext& ctx, Emit diags) {
  if (ctx.rel_path.find("comm/") == std::string::npos) return;
  static const std::regex owned_member(
      R"(\bstd::vector\s*<\s*(?:float|std::uint32_t|uint32_t)\s*>\s+[A-Za-z_]\w*\s*;)");
  static const std::regex payload_growth(
      R"((?:\.|->)\s*(?:values|indices)\s*\.\s*(?:push_back|emplace_back|insert|assign|resize)\s*\()");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (ctx.is_header && std::regex_search(line, owned_member)) {
      emit(diags, ctx, static_cast<int>(i) + 1, "dlion-owned-payload",
           "owned vector payload member in a comm struct; data-lane "
           "messages must carry comm::Payload views (zero-copy data "
           "plane) - stage through a PayloadWriter instead");
    }
    if (std::regex_search(line, payload_growth)) {
      emit(diags, ctx, static_cast<int>(i) + 1, "dlion-owned-payload",
           "element-wise growth of a payload field copies bytes the "
           "zero-copy plane shares by view; build an owned vector and "
           "stage it once via PayloadWriter::copy / make_payload");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------
const std::regex kArtifactWriter(
    R"(\b(?:to_json|write_json|json_escape|to_csv|write_csv|csv|checksum|fnv1a|Telemetry|MetricsRegistry|export_chrome_trace|std::ofstream)\b)",
    std::regex::icase);

const std::regex kInlineAllow(R"(dlion-lint:\s*allow\(([^)]*)\))");

FileContext load_file(const fs::path& path, const fs::path& root) {
  FileContext ctx;
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  ctx.rel_path = (ec ? path : rel).generic_string();
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string src = buf.str();
  ctx.raw = split_lines(src);
  ctx.code = split_lines(strip_comments_and_strings(src));
  ctx.writes_artifacts = std::regex_search(src, kArtifactWriter);
  ctx.in_tensor_lib = ctx.rel_path.find("src/tensor/") != std::string::npos ||
                      ctx.rel_path.rfind("tensor/", 0) == 0;
  ctx.is_header = path.extension() == ".h" || path.extension() == ".hpp" ||
                  path.extension() == ".inl";
  for (std::size_t i = 0; i < ctx.raw.size(); ++i) {
    std::smatch m;
    if (std::regex_search(ctx.raw[i], m, kInlineAllow)) {
      std::set<std::string>& rules = ctx.inline_allows[static_cast<int>(i) + 1];
      std::string list = m[1].str();
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        std::string rule = list.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        // trim
        while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.front())))
          rule.erase(rule.begin());
        while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.back())))
          rule.pop_back();
        if (!rule.empty()) rules.insert(rule);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
  }
  return ctx;
}

std::vector<AllowEntry> load_allowlist(const fs::path& path) {
  std::vector<AllowEntry> entries;
  if (path.empty()) return entries;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "dlion-lint: cannot open allowlist " << path << "\n";
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    AllowEntry e;
    if (ls >> e.rule >> e.path_substring) entries.push_back(e);
  }
  return entries;
}

bool allowlisted(const std::vector<AllowEntry>& allow, const Diagnostic& d) {
  for (const AllowEntry& e : allow) {
    if ((e.rule == "*" || e.rule == d.rule) &&
        d.file.find(e.path_substring) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json_report(const fs::path& path,
                       const std::vector<Diagnostic>& diags,
                       std::size_t files_scanned) {
  std::ofstream out(path, std::ios::binary);
  out << "{\n  \"version\": 1,\n  \"files_scanned\": " << files_scanned
      << ",\n  \"diagnostic_count\": " << diags.size()
      << ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << json_escape(d.file) << "\", \"line\": "
        << d.line << ", \"rule\": \"" << json_escape(d.rule)
        << "\", \"message\": \"" << json_escape(d.message) << "\"}";
  }
  out << (diags.empty() ? "]" : "\n  ]") << "\n}\n";
}

void usage() {
  std::cerr
      << "usage: dlion-lint [--root DIR] [--allowlist FILE] [--json FILE]\n"
         "                  [--verbose] [PATH...]\n"
         "Scans PATH (default: <root>/src) for nondeterminism hazards.\n"
         "Exit: 0 clean, 1 diagnostics found, 2 usage/IO error.\n";
}

bool is_cxx_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp" || ext == ".inl";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.root = fs::current_path();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "dlion-lint: " << flag << " requires a value\n";
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opt.root = need_value("--root");
    } else if (arg == "--allowlist") {
      opt.allowlist_path = need_value("--allowlist");
    } else if (arg == "--json") {
      opt.json_path = need_value("--json");
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dlion-lint: unknown flag " << arg << "\n";
      usage();
      return 2;
    } else {
      opt.targets.emplace_back(arg);
    }
  }
  if (opt.targets.empty()) opt.targets.push_back(opt.root / "src");

  // Collect files in sorted order so scan (and report) order is stable.
  std::vector<fs::path> files;
  for (const fs::path& target : opt.targets) {
    std::error_code ec;
    if (fs::is_directory(target, ec)) {
      for (fs::recursive_directory_iterator it(target, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file() && is_cxx_source(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(target, ec)) {
      files.push_back(target);
    } else {
      std::cerr << "dlion-lint: no such file or directory: " << target << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  const std::vector<AllowEntry> allow = load_allowlist(opt.allowlist_path);

  std::vector<Diagnostic> diags;
  for (const fs::path& file : files) {
    const FileContext ctx = load_file(file, opt.root);
    if (opt.verbose) std::cerr << "dlion-lint: scanning " << ctx.rel_path << "\n";
    rule_unordered_iteration(ctx, diags);
    rule_entropy(ctx, diags);
    rule_pointer_key(ctx, diags);
    rule_float_accumulate(ctx, diags);
    rule_missing_override(ctx, diags);
    rule_uninit_pod(ctx, diags);
    rule_owned_payload(ctx, diags);
  }
  diags.erase(std::remove_if(diags.begin(), diags.end(),
                             [&](const Diagnostic& d) {
                               return allowlisted(allow, d);
                             }),
              diags.end());
  std::sort(diags.begin(), diags.end());

  for (const Diagnostic& d : diags) {
    std::cout << d.file << ":" << d.line << ": error: " << d.message << " ["
              << d.rule << "]\n";
  }
  if (!opt.json_path.empty()) {
    write_json_report(opt.json_path, diags, files.size());
  }
  if (diags.empty()) {
    std::cout << "dlion-lint: " << files.size() << " files clean\n";
    return 0;
  }
  std::cout << "dlion-lint: " << diags.size() << " diagnostic(s) in "
            << files.size() << " file(s)\n";
  return 1;
}

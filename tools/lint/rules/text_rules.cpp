// v1 text rules, moved verbatim from the original single-TU linter.
// Their regexes and messages are a compatibility contract: the golden
// transcript test (tests/tools fixture expected_v1_output.txt) fails on any
// byte-level drift in what they emit.
#include <cstddef>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "../rules.h"

namespace dlion_lint {

// Rule: dlion-nondet-unordered-iteration
// Collect identifiers declared with std::unordered_{map,set} anywhere in the
// file, then flag range-for loops or .begin()/.end()/iterator walks over them
// — but only in TUs that also write run artifacts (JSON/CSV/checksums),
// because that's where visit order becomes observable output.
void rule_unordered_iteration(const FileContext& ctx, Emit diags) {
  static const std::regex decl_re(
      R"(std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s*>?\s*([A-Za-z_]\w*)\s*[;{=\(])");
  static const std::regex member_re(
      R"(std::unordered_(?:map|set|multimap|multiset)\s*<.*>\s+([A-Za-z_]\w*)_?\s*;)");
  std::set<std::string> unordered_names;
  for (const std::string& line : ctx.code) {
    for (auto it = std::sregex_iterator(line.begin(), line.end(), decl_re);
         it != std::sregex_iterator(); ++it) {
      unordered_names.insert((*it)[1].str());
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), member_re);
         it != std::sregex_iterator(); ++it) {
      unordered_names.insert((*it)[1].str());
    }
  }
  if (unordered_names.empty()) return;
  if (!ctx.writes_artifacts) return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    for (const std::string& name : unordered_names) {
      const std::regex range_for(R"(for\s*\([^;)]*:\s*)" + name + R"(\b)");
      const std::regex begin_walk("\\b" + name + R"((?:_)?\s*\.\s*(?:c?begin|c?end)\s*\()");
      if (std::regex_search(line, range_for) ||
          std::regex_search(line, begin_walk)) {
        emit(diags, ctx, static_cast<int>(i) + 1,
             "dlion-nondet-unordered-iteration",
             "iteration over unordered container '" + name +
                 "' in a TU that writes JSON/CSV/checksum output; visit "
                 "order is hash-seed dependent - use a sorted container or "
                 "sort keys first");
      }
    }
  }
}

// Rule: dlion-nondet-entropy
// OS entropy / wall-clock time sources. Allowed only via allowlist (the
// seeded RNG implementation and bench timers).
void rule_entropy(const FileContext& ctx, Emit diags) {
  struct Pattern {
    std::regex re;
    const char* what;
  };
  static const std::vector<Pattern> patterns = [] {
    std::vector<Pattern> p;
    p.push_back({std::regex(R"(\bstd::random_device\b)"),
                 "std::random_device draws OS entropy"});
    p.push_back({std::regex(R"((?:^|[^:\w])rand\s*\(\s*\))"),
                 "rand() is seeded from process state"});
    p.push_back({std::regex(R"((?:^|[^:\w])s?rand\s*\(\s*time\s*\()"),
                 "time-seeded rand()"});
    p.push_back({std::regex(R"(\btime\s*\(\s*(?:nullptr|NULL|0)\s*\))"),
                 "time(nullptr) reads the wall clock"});
    p.push_back({std::regex(R"(\bstd::chrono::(?:system|steady|high_resolution)_clock\b)"),
                 "host clocks vary per run; use the sim virtual clock"});
    p.push_back({std::regex(R"(\bgettimeofday\s*\()"),
                 "gettimeofday reads the wall clock"});
    return p;
  }();
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    for (const Pattern& p : patterns) {
      if (std::regex_search(ctx.code[i], p.re)) {
        emit(diags, ctx, static_cast<int>(i) + 1, "dlion-nondet-entropy",
             std::string(p.what) +
                 "; deterministic replays require common::Rng / sim time");
      }
    }
  }
}

// Rule: dlion-nondet-pointer-key
// Ordered containers keyed by pointer compare allocation addresses, which
// ASLR randomizes; iteration order then differs between runs.
void rule_pointer_key(const FileContext& ctx, Emit diags) {
  static const std::regex re(
      R"(\bstd::(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*)");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (std::regex_search(ctx.code[i], re)) {
      emit(diags, ctx, static_cast<int>(i) + 1, "dlion-nondet-pointer-key",
           "ordered container keyed by pointer value; iteration order "
           "follows ASLR-randomized addresses - key by a stable id instead");
    }
  }
}

// Rule: dlion-nondet-float-accumulate
// Floating-point accumulation order is a tested contract owned by
// src/tensor; ad-hoc std::accumulate over floats elsewhere invites
// reassociation drift when someone later parallelizes or reorders.
void rule_float_accumulate(const FileContext& ctx, Emit diags) {
  if (ctx.in_tensor_lib) return;
  static const std::regex re(
      R"(\bstd::accumulate\s*\([^;]*[,(]\s*(?:0\.\d*f?|\d+\.\d*f|0\.f|(?:float|double)\s*[{(]))");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (std::regex_search(ctx.code[i], re)) {
      emit(diags, ctx, static_cast<int>(i) + 1,
           "dlion-nondet-float-accumulate",
           "floating-point std::accumulate outside src/tensor; summation "
           "order is a determinism contract - use the tensor reductions");
    }
  }
}

// Rule: dlion-missing-override
// Inside a class/struct that names a base (`: public Base`), a `virtual`
// method declaration without `override`/`final` silently stops overriding
// when the base signature changes. (Pure-virtual base declarations live in
// classes without bases and are not flagged.)
void rule_missing_override(const FileContext& ctx, Emit diags) {
  static const std::regex class_with_base(
      R"(\b(?:class|struct)\s+[A-Za-z_]\w*(?:\s+final)?\s*:\s*(?:public|protected|private)\b)");
  static const std::regex virtual_decl(R"(\bvirtual\b)");
  static const std::regex has_override(R"(\boverride\b|\bfinal\b|\s*=\s*0)");
  static const std::regex dtor(R"(\bvirtual\s+~)");
  int depth = 0;
  int derived_depth = -1;  // brace depth at which the derived class body opened
  bool pending_derived = false;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (std::regex_search(line, class_with_base)) pending_derived = true;
    for (char c : line) {
      if (c == '{') {
        ++depth;
        if (pending_derived && derived_depth < 0) {
          derived_depth = depth;
          pending_derived = false;
        }
      } else if (c == '}') {
        if (derived_depth == depth) derived_depth = -1;
        --depth;
      }
    }
    if (derived_depth > 0 && depth >= derived_depth &&
        std::regex_search(line, virtual_decl) &&
        !std::regex_search(line, has_override) &&
        !std::regex_search(line, dtor)) {
      emit(diags, ctx, static_cast<int>(i) + 1, "dlion-missing-override",
           "'virtual' in a derived class without 'override'; base-signature "
           "drift would silently fork behavior - mark it override");
    }
  }
}

// Rule: dlion-uninit-pod
// Wire-message and config structs must brace- or equals-initialize every
// POD member: an uninitialized field encodes stack garbage, which is the
// definition of nondeterministic bytes on the wire / in run artifacts.
void rule_uninit_pod(const FileContext& ctx, Emit diags) {
  const bool is_message_or_config =
      ctx.rel_path.find("message") != std::string::npos ||
      ctx.rel_path.find("config") != std::string::npos;
  if (!is_message_or_config || !ctx.is_header) return;
  static const std::regex struct_open(R"(\b(?:struct|class)\s+[A-Za-z_]\w*)");
  static const std::regex pod_member_no_init(
      R"(^\s*(?:float|double|bool|char|(?:unsigned\s+)?(?:int|long|short)|std::size_t|std::u?int(?:8|16|32|64)_t|common::(?:SimTime|Bytes|Seconds))\s+[A-Za-z_]\w*\s*;\s*$)");
  int depth = 0;
  int struct_depth = -1;
  bool pending_struct = false;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (std::regex_search(line, struct_open)) pending_struct = true;
    if (struct_depth > 0 && depth >= struct_depth &&
        std::regex_match(line, pod_member_no_init)) {
      emit(diags, ctx, static_cast<int>(i) + 1, "dlion-uninit-pod",
           "uninitialized POD member in a wire/config struct; garbage bytes "
           "are nondeterministic - add '= 0' / '{}' default");
    }
    for (char c : line) {
      if (c == '{') {
        ++depth;
        if (pending_struct && struct_depth < 0) {
          struct_depth = depth;
          pending_struct = false;
        }
      } else if (c == '}') {
        if (struct_depth == depth) struct_depth = -1;
        --depth;
      }
    }
  }
}

// Rule: dlion-owned-payload
// Data-lane messages under comm/ carry comm::Payload views into refcounted
// arena blocks (DESIGN.md "Zero-copy data plane"); an owned
// std::vector<float> / std::vector<std::uint32_t> payload member - or
// growing a payload element-wise via push_back/insert/assign - reintroduces
// the per-message copies the zero-copy refactor eliminated. Member
// declarations are audited in headers (where the wire structs live);
// element-wise growth is flagged everywhere under comm/. The codec boundary
// legitimately materializes owned bytes and escapes with
// `// dlion-lint: allow(dlion-owned-payload)`.
void rule_owned_payload(const FileContext& ctx, Emit diags) {
  if (ctx.rel_path.find("comm/") == std::string::npos) return;
  static const std::regex owned_member(
      R"(\bstd::vector\s*<\s*(?:float|std::uint32_t|uint32_t)\s*>\s+[A-Za-z_]\w*\s*;)");
  static const std::regex payload_growth(
      R"((?:\.|->)\s*(?:values|indices)\s*\.\s*(?:push_back|emplace_back|insert|assign|resize)\s*\()");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (ctx.is_header && std::regex_search(line, owned_member)) {
      emit(diags, ctx, static_cast<int>(i) + 1, "dlion-owned-payload",
           "owned vector payload member in a comm struct; data-lane "
           "messages must carry comm::Payload views (zero-copy data "
           "plane) - stage through a PayloadWriter instead");
    }
    if (std::regex_search(line, payload_growth)) {
      emit(diags, ctx, static_cast<int>(i) + 1, "dlion-owned-payload",
           "element-wise growth of a payload field copies bytes the "
           "zero-copy plane shares by view; build an owned vector and "
           "stage it once via PayloadWriter::copy / make_payload");
    }
  }
}

void run_text_rules(const FileContext& ctx, Emit diags) {
  rule_unordered_iteration(ctx, diags);
  rule_entropy(ctx, diags);
  rule_pointer_key(ctx, diags);
  rule_float_accumulate(ctx, diags);
  rule_missing_override(ctx, diags);
  rule_uninit_pod(ctx, diags);
  rule_owned_payload(ctx, diags);
}

}  // namespace dlion_lint

// v2 semantic rules: concurrency and lifetime hazards that need type
// resolution (receiver -> declared type) rather than line regexes. All of
// them walk the token stream plus the scope model; all honor the same
// inline-allow and allowlist escape hatches as the text rules.
#include <cstddef>
#include <string>
#include <vector>

#include "../rules.h"

namespace dlion_lint {
namespace {

bool path_contains(const FileContext& ctx, const char* s) {
  return ctx.rel_path.find(s) != std::string::npos;
}

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }

/// Resolve the receiver of a member access: the identifier directly before
/// the `.`/`->` at tokens[dot], walking back over one balanced `[...]` or
/// `(...)` group (so `xs[i].f()` resolves `xs`). Empty when unresolvable.
std::string receiver_before(const std::vector<Token>& toks,
                            std::size_t dot) {
  if (dot == 0) return std::string();
  std::size_t j = dot - 1;
  const std::string& t = toks[j].text;
  if (t == "]" || t == ")") {
    const std::string open = t == "]" ? "[" : "(";
    int depth = 0;
    while (true) {
      if (toks[j].text == t) ++depth;
      if (toks[j].text == open) {
        if (--depth == 0) break;
      }
      if (j == 0) return std::string();
      --j;
    }
    if (j == 0) return std::string();
    --j;
  }
  if (!is_ident(toks[j])) return std::string();
  // `a.b.c` / `ns::x.f`: only a plain identifier receiver resolves; a
  // preceding `.`/`->` means b itself is a member — resolve b directly
  // (member names are pooled in the model, so this still works).
  return toks[j].text;
}

/// True when tokens[i..] begins the given member call: `.`/`->` NAME `(`.
bool member_call_at(const std::vector<Token>& toks, std::size_t i,
                    const char* name) {
  if (i + 2 >= toks.size()) return false;
  if (toks[i].text != "." && toks[i].text != "->") return false;
  return is_ident(toks[i + 1]) && toks[i + 1].text == name &&
         toks[i + 2].text == "(";
}

}  // namespace

// Rule: dlion-payload-escape
// Payload<T> objects are views into refcounted arena blocks; the zero-copy
// contract (DESIGN.md "Zero-copy data plane") is that they live on the
// stack or inside messages in flight, never in static storage (the arena
// dies first at shutdown → dangling view) and never as a raw pointer
// squirreled into a member (`p_ = payload.data()` outlives the refcount it
// borrowed from).
void rule_payload_escape(const FileContext& ctx, Emit diags) {
  // (a) static-storage payload objects.
  for (const VarDecl& g : ctx.model.globals) {
    if (!is_payload_type(g.type)) continue;
    emit(diags, ctx, g.line, "dlion-payload-escape",
         "payload object '" + g.name +
             "' has static storage duration; arena-backed views must not "
             "outlive the PayloadArena - keep payloads on the stack or in "
             "messages in flight");
  }
  // (b) a member-style lvalue capturing `payload.data()` / `payload.span()`.
  const std::vector<Token>& toks = ctx.tokens;
  for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
    if (toks[i].text != "=") continue;
    // Right side: IDENT . (data|span) (
    if (!is_ident(toks[i + 1])) continue;
    const bool rhs_call = member_call_at(toks, i + 2, "data") ||
                          member_call_at(toks, i + 2, "span");
    if (!rhs_call) continue;
    if (!is_payload_type(ctx.model.type_of(toks[i + 1].text))) continue;
    // Left side: `name_` or `this->name` (member-style lvalue).
    if (i == 0 || !is_ident(toks[i - 1])) continue;
    const std::string& lhs = toks[i - 1].text;
    const bool member_suffix = !lhs.empty() && lhs.back() == '_';
    const bool via_this = i >= 3 && toks[i - 2].text == "->" &&
                          toks[i - 3].text == "this";
    if (!member_suffix && !via_this) continue;
    emit(diags, ctx, toks[i].line, "dlion-payload-escape",
         "member '" + lhs + "' captures " + toks[i + 1].text + "." +
             toks[i + 3].text +
             "(); the pointer borrows the payload's refcount and dangles "
             "once the message is released - store the Payload itself");
  }
}

// Rule: dlion-unannotated-mutex
// (a) A std::mutex-family member/variable anywhere outside common/mutex.h:
//     use common::Mutex so Clang's -Wthread-safety can see lock/unlock.
// (b) A common::Mutex member/global with no sibling declaration annotated
//     DLION_GUARDED_BY(that mutex): a mutex that guards nothing is either
//     dead weight or — worse — guarding state the analysis cannot check.
void rule_unannotated_mutex(const FileContext& ctx, Emit diags) {
  if (path_contains(ctx, "common/mutex")) return;

  auto check_std = [&](const VarDecl& v) {
    if (!is_std_mutex_type(v.type)) return;
    emit(diags, ctx, v.line, "dlion-unannotated-mutex",
         "'" + v.name + "' is a " + v.type +
             "; use common::Mutex (capability-annotated) so "
             "-Wthread-safety can check every critical section");
  };
  auto guards_nothing = [](const std::vector<VarDecl>& siblings,
                           const std::string& mutex_name) {
    for (const VarDecl& s : siblings) {
      for (const std::string& ann : s.annotations) {
        if ((ann.rfind("DLION_GUARDED_BY(", 0) == 0 ||
             ann.rfind("DLION_PT_GUARDED_BY(", 0) == 0) &&
            ann.find("(" + mutex_name + ")") != std::string::npos) {
          return false;
        }
      }
    }
    return true;
  };

  for (const ClassInfo& c : ctx.model.classes) {
    for (const VarDecl& m : c.members) {
      check_std(m);
      if (is_mutex_type(m.type) && !is_std_mutex_type(m.type) &&
          guards_nothing(c.members, m.name)) {
        emit(diags, ctx, m.line, "dlion-unannotated-mutex",
             "mutex member '" + m.name +
                 "' guards nothing: no sibling member is annotated "
                 "DLION_GUARDED_BY(" +
                 m.name +
                 ") - annotate the guarded state (or justify wait-only "
                 "use inline)");
      }
    }
  }
  for (const VarDecl& g : ctx.model.globals) {
    check_std(g);
    if (is_mutex_type(g.type) && !is_std_mutex_type(g.type) &&
        guards_nothing(ctx.model.globals, g.name)) {
      emit(diags, ctx, g.line, "dlion-unannotated-mutex",
           "mutex '" + g.name +
               "' guards nothing: no variable in this file is annotated "
               "DLION_GUARDED_BY(" +
               g.name + ")");
    }
  }
  for (const VarDecl& l : ctx.model.locals) check_std(l);
}

// Rule: dlion-atomic-rmw-order
// The numeric substrate's determinism contract keeps atomics to counters
// and flags; every read-modify-write should be memory_order_relaxed unless
// a comment justifies the stronger order (and carries an inline allow).
// Defaulted seq_cst is the usual accident: it hides the cost and reads as
// "I didn't think about the ordering".
void rule_atomic_rmw_order(const FileContext& ctx, Emit diags) {
  static const char* kRmw[] = {
      "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or",  "fetch_xor", "exchange",
      "compare_exchange_weak",  "compare_exchange_strong"};
  const std::vector<Token>& toks = ctx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const char* rmw = nullptr;
    for (const char* name : kRmw) {
      if (member_call_at(toks, i, name)) {
        rmw = name;
        break;
      }
    }
    if (rmw == nullptr) continue;
    const std::string recv = receiver_before(toks, i);
    if (recv.empty() || !is_atomic_type(ctx.model.type_of(recv))) continue;
    // Scan the argument list for a memory_order token.
    bool has_order = false;
    bool non_relaxed = false;
    int depth = 0;
    for (std::size_t j = i + 2; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) break;
      if (is_ident(toks[j]) &&
          toks[j].text.rfind("memory_order", 0) == 0) {
        has_order = true;
        if (toks[j].text != "memory_order" &&
            toks[j].text != "memory_order_relaxed") {
          non_relaxed = true;
        }
        // `std::memory_order::relaxed` spelling: enum name then ::member.
        if (toks[j].text == "memory_order" && j + 2 < toks.size() &&
            toks[j + 1].text == "::" && is_ident(toks[j + 2]) &&
            toks[j + 2].text != "relaxed") {
          non_relaxed = true;
        }
      }
    }
    if (!has_order || non_relaxed) {
      emit(diags, ctx, toks[i + 1].line, "dlion-atomic-rmw-order",
           std::string("atomic '") + recv + "." + rmw + "' " +
               (has_order ? "uses a non-relaxed memory order"
                          : "defaults to seq_cst") +
               "; counters/flags want memory_order_relaxed - justify a "
               "stronger order with a comment + inline allow");
    }
  }
}

// Rule: dlion-raw-thread
// Thread lifecycle belongs to common::ThreadPool (RAII-joined workers, no
// detach — Core Guidelines CP.21 ff.). A raw std::thread/std::jthread
// anywhere else forks execution outside the pool's join discipline; a
// .detach() leaks a runaway thread past shutdown.
void rule_raw_thread(const FileContext& ctx, Emit diags) {
  const bool exempt = path_contains(ctx, "common/thread_pool");
  const std::vector<Token>& toks = ctx.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!exempt && toks[i].text == "std" && toks[i + 1].text == "::" &&
        is_ident(toks[i + 2]) &&
        (toks[i + 2].text == "thread" || toks[i + 2].text == "jthread")) {
      // `std::thread::id` etc. are types of the pool's own machinery, not
      // thread construction; skip when a scope qualifier follows.
      if (i + 3 < toks.size() && toks[i + 3].text == "::") continue;
      emit(diags, ctx, toks[i + 2].line, "dlion-raw-thread",
           "raw std::" + toks[i + 2].text +
               " outside common/thread_pool; run work through "
               "ThreadPool::parallel_for so every thread is RAII-joined");
    }
    if (member_call_at(toks, i, "detach")) {
      const std::string recv = receiver_before(toks, i);
      if (!recv.empty() && is_thread_type(ctx.model.type_of(recv))) {
        emit(diags, ctx, toks[i + 1].line, "dlion-raw-thread",
             "'" + recv +
                 ".detach()' leaks a thread past scope exit; detached "
                 "threads race shutdown - join via the pool instead");
      }
    }
  }
}

// Rule: dlion-lock-no-raii
// Bare lock()/unlock() calls on a mutex cannot be paired by review or by
// the capability analysis (an early return or exception skips the unlock).
// Critical sections must be scoped: MutexLock / std::scoped_lock.
void rule_lock_no_raii(const FileContext& ctx, Emit diags) {
  if (path_contains(ctx, "common/mutex")) return;
  const std::vector<Token>& toks = ctx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const bool is_lock = member_call_at(toks, i, "lock");
    const bool is_unlock = member_call_at(toks, i, "unlock");
    if (!is_lock && !is_unlock) continue;
    const std::string recv = receiver_before(toks, i);
    if (recv.empty() || !is_mutex_type(ctx.model.type_of(recv))) continue;
    emit(diags, ctx, toks[i + 1].line, "dlion-lock-no-raii",
         "bare '" + recv + "." + (is_lock ? "lock" : "unlock") +
             "()'; an early return or exception breaks the pairing - "
             "scope the critical section with MutexLock");
  }
}

void run_semantic_rules(const FileContext& ctx, Emit diags) {
  rule_payload_escape(ctx, diags);
  rule_unannotated_mutex(ctx, diags);
  rule_atomic_rmw_order(ctx, diags);
  rule_raw_thread(ctx, diags);
  rule_lock_no_raii(ctx, diags);
}

}  // namespace dlion_lint

// Shared data model for dlion-lint v2 (see dlion_lint.cpp for the tool's
// contract). One FileContext per scanned file carries both analysis
// representations: the v1 stripped-line view (text rules regex over it,
// byte-compatible with the original single-TU linter) and the v2 token
// stream + scope model (semantic rules walk those).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"
#include "scope_model.h"

namespace dlion_lint {

struct Diagnostic {
  std::string file;  // path relative to --root (stable across machines)
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

struct AllowEntry {
  std::string rule;  // "*" matches every rule
  std::string path_substring;
  int line = 0;  // 1-based line in the allowlist file (stale reporting)
};

struct FileContext {
  std::string rel_path;           // reported path
  std::vector<std::string> raw;   // original lines (for suppressions)
  std::vector<std::string> code;  // stripped lines (text rules scan these)
  bool writes_artifacts = false;  // TU emits JSON/CSV/checksum output
  bool in_tensor_lib = false;     // under src/tensor/
  bool is_header = false;
  // Line numbers (1-based) carrying `// dlion-lint: allow(rule)` markers,
  // mapped to the set of rule ids allowed on that line ("*" = all).
  std::map<int, std::set<std::string>> inline_allows;

  // v2 semantic view.
  std::vector<Token> tokens;  // lexed from the raw source
  ScopeModel model;           // classes/members/locals built from tokens
};

bool line_allows(const FileContext& ctx, int line, const std::string& rule);

using Emit = std::vector<Diagnostic>&;

/// Append a diagnostic unless the line carries a matching inline allow.
void emit(Emit diags, const FileContext& ctx, int line, std::string rule,
          std::string message);

}  // namespace dlion_lint

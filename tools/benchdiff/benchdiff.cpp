// benchdiff — the perf-regression gate for the committed BENCH_*.json
// anchors (DESIGN.md, "Gating performance").
//
// Diffs two bench-report JSON files (baseline vs candidate), flattening
// every scalar leaf to a dotted path (`comm.msgs_per_sec`,
// `gemm_single_thread[0].packed_gflops`, ...) and judging each against an
// ordered, first-match list of glob rules. A rule says which direction is
// good (higher-better throughput, lower-better latency/allocs, exact for
// determinism flags) and how much slack the metric gets (relative %,
// absolute, or none). Prints an aligned table of every gated metric and
// exits nonzero when any of them regressed, so CI can run
//
//   dlion-benchdiff BENCH_hotpath.json build/BENCH_hotpath_t1.json
//
// against the committed anchor and fail the job on a real slowdown.
//
// Wall-clock metrics are meaningless across machines, so every
// timing-derived rule carries a `timing` tag; `--lenient-timings`
// downgrades those to report-only while the deterministic gates (allocs,
// copies, event counts, bit-identity flags) stay hard. Custom policies
// load with `--rules=FILE` (one rule per line: `pattern kind [rel=R]
// [abs=A] [timing]`).
//
// Exit codes: 0 = no regression, 1 = regression (or gated metric
// missing from the candidate), 2 = usage / parse error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/json_lite.h"

namespace {

using dlion::obs::jsonlite::Json;
using dlion::obs::jsonlite::JsonParser;

// ---------------------------------------------------------------------------
// Leaves: every scalar in the report, addressed by dotted path.

struct Leaf {
  bool is_num = false;
  double num = 0.0;
  std::string str;  // string / "true" / "false" / "null" when !is_num
};

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string leaf_str(const Leaf& l) { return l.is_num ? fmt_num(l.num) : l.str; }

void flatten(const Json& j, const std::string& path,
             std::map<std::string, Leaf>& out) {
  switch (j.kind) {
    case Json::Kind::kObject:
      for (const auto& [k, v] : j.object) {
        flatten(v, path.empty() ? k : path + "." + k, out);
      }
      break;
    case Json::Kind::kArray:
      for (std::size_t i = 0; i < j.array.size(); ++i) {
        flatten(j.array[i], path + "[" + std::to_string(i) + "]", out);
      }
      break;
    case Json::Kind::kNumber:
      out[path] = Leaf{true, j.number, {}};
      break;
    case Json::Kind::kString:
      out[path] = Leaf{false, 0.0, j.str};
      break;
    case Json::Kind::kBool:
      out[path] = Leaf{false, 0.0, j.boolean ? "true" : "false"};
      break;
    case Json::Kind::kNull:
      out[path] = Leaf{false, 0.0, "null"};
      break;
  }
}

// ---------------------------------------------------------------------------
// Rules: ordered, first glob match wins.

enum class Kind { kHigherBetter, kLowerBetter, kExact, kInfo };

struct Rule {
  std::string pattern;
  Kind kind = Kind::kInfo;
  double rel_pct = 0.0;  // relative tolerance, percent of |baseline|
  double abs_tol = 0.0;  // absolute tolerance, same units as the metric
  bool timing = false;   // wall-clock derived: --lenient-timings demotes it
};

// `*`-only glob (the paths have no other metacharacters worth supporting).
bool glob_match(const char* pat, const char* s) {
  for (; *pat != '\0'; ++pat, ++s) {
    if (*pat == '*') {
      while (pat[1] == '*') ++pat;
      if (pat[1] == '\0') return true;
      for (; *s != '\0'; ++s) {
        if (glob_match(pat + 1, s)) return true;
      }
      return false;
    }
    if (*s != *pat) return false;
  }
  return *s == '\0';
}

// The built-in policy, tuned to the schemas of the committed anchors
// (BENCH_hotpath.json, BENCH_obs.json). Order matters: first match wins,
// `*` at the end makes everything else report-only.
std::vector<Rule> default_rules() {
  return {
      // Determinism and schema identity: any drift is a failure.
      {"*schema*", Kind::kExact},
      {"*bitmatch*", Kind::kExact},
      {"*identical*", Kind::kExact},
      // Checksums legitimately change whenever numerics change; the
      // serial==parallel comparison above is the real gate.
      {"*checksum*", Kind::kInfo},
      // Deterministic efficiency counters: zero slack.
      {"*allocs*", Kind::kLowerBetter},
      {"*copies*", Kind::kLowerBetter},
      {"*copy_bytes*", Kind::kLowerBetter},
      {"*trace_events*", Kind::kExact},
      {"*metric_series*", Kind::kExact},
      // Throughput (higher is better) and latency (lower is better):
      // 10% slack, demoted to report-only under --lenient-timings.
      {"*gflops*", Kind::kHigherBetter, 10.0, 0.0, true},
      {"*per_sec*", Kind::kHigherBetter, 10.0, 0.0, true},
      {"*per_s", Kind::kHigherBetter, 10.0, 0.0, true},
      {"*gelems_per_s*", Kind::kHigherBetter, 10.0, 0.0, true},
      {"*p50*", Kind::kLowerBetter, 10.0, 0.0, true},
      {"*p90*", Kind::kLowerBetter, 10.0, 0.0, true},
      {"*p99*", Kind::kLowerBetter, 10.0, 0.0, true},
      {"*latency*", Kind::kLowerBetter, 10.0, 0.0, true},
      {"*ms_per_step*", Kind::kLowerBetter, 25.0, 0.0, true},
      // Instrumentation overhead: one percentage point of absolute slack.
      {"*overhead_pct*", Kind::kLowerBetter, 0.0, 1.0, true},
      {"*wall_ms*", Kind::kInfo},
      {"*", Kind::kInfo},
  };
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kHigherBetter: return "higher";
    case Kind::kLowerBetter: return "lower";
    case Kind::kExact: return "exact";
    case Kind::kInfo: return "info";
  }
  return "?";
}

bool parse_rules_file(const std::string& path, std::vector<Rule>& out,
                      std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot open rules file '" + path + "'";
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    Rule r;
    std::string kind;
    if (!(ls >> r.pattern >> kind)) continue;  // blank / comment-only line
    if (kind == "higher") {
      r.kind = Kind::kHigherBetter;
    } else if (kind == "lower") {
      r.kind = Kind::kLowerBetter;
    } else if (kind == "exact") {
      r.kind = Kind::kExact;
    } else if (kind == "info") {
      r.kind = Kind::kInfo;
    } else {
      err = path + ":" + std::to_string(lineno) + ": unknown kind '" + kind +
            "' (want higher|lower|exact|info)";
      return false;
    }
    std::string tok;
    while (ls >> tok) {
      if (tok.rfind("rel=", 0) == 0) {
        r.rel_pct = std::stod(tok.substr(4));
      } else if (tok.rfind("abs=", 0) == 0) {
        r.abs_tol = std::stod(tok.substr(4));
      } else if (tok == "timing") {
        r.timing = true;
      } else {
        err = path + ":" + std::to_string(lineno) + ": unknown token '" +
              tok + "'";
        return false;
      }
    }
    out.push_back(std::move(r));
  }
  // A custom file replaces the policy wholesale; keep unmatched metrics
  // visible instead of silently dropping them.
  out.push_back(Rule{"*", Kind::kInfo});
  return true;
}

// ---------------------------------------------------------------------------
// Judging.

enum class Verdict { kOk, kBetter, kRegression, kInfo };

struct Row {
  std::string path;
  std::string base, cand, delta;
  const Rule* rule = nullptr;
  Verdict verdict = Verdict::kInfo;
};

Verdict judge(const Rule& r, const Leaf& base, const Leaf& cand,
              bool lenient_timings) {
  const Kind kind =
      (lenient_timings && r.timing) ? Kind::kInfo : r.kind;
  if (kind == Kind::kInfo) return Verdict::kInfo;
  if (!base.is_num || !cand.is_num || kind == Kind::kExact) {
    const bool same = base.is_num == cand.is_num &&
                      (base.is_num ? base.num == cand.num
                                   : base.str == cand.str);
    return same ? Verdict::kOk : Verdict::kRegression;
  }
  const double tol =
      std::max(r.abs_tol, (base.num < 0 ? -base.num : base.num) *
                              r.rel_pct / 100.0);
  const double d = cand.num - base.num;
  if (kind == Kind::kHigherBetter) {
    if (d < -tol) return Verdict::kRegression;
    if (d > tol) return Verdict::kBetter;
  } else {  // lower-better
    if (d > tol) return Verdict::kRegression;
    if (d < -tol) return Verdict::kBetter;
  }
  return Verdict::kOk;
}

const char* verdict_str(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kBetter: return "BETTER";
    case Verdict::kRegression: return "REGRESS";
    case Verdict::kInfo: return ".";
  }
  return "?";
}

bool load_json(const std::string& path, Json& out, std::string& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err = "cannot open '" + path + "'";
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();  // JsonParser keeps a reference
  JsonParser parser(text);
  if (!parser.parse(out)) {
    err = "'" + path + "' is not valid JSON";
    return false;
  }
  return true;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [options] BASELINE.json CANDIDATE.json\n"
         "Diff two bench reports against per-metric tolerance rules.\n"
         "  --rules=FILE       replace the built-in rules (pattern kind\n"
         "                     [rel=R] [abs=A] [timing] per line)\n"
         "  --lenient-timings  demote wall-clock-derived rules to\n"
         "                     report-only (for cross-machine CI anchors)\n"
         "  --all              also print report-only (info) metrics\n"
         "exit: 0 ok, 1 regression, 2 usage/parse error\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string rules_path;
  bool lenient_timings = false;
  bool show_all = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rules=", 0) == 0) {
      rules_path = arg.substr(8);
    } else if (arg == "--lenient-timings") {
      lenient_timings = true;
    } else if (arg == "--all") {
      show_all = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "benchdiff: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) return usage(argv[0]);

  std::string err;
  std::vector<Rule> rules;
  if (rules_path.empty()) {
    rules = default_rules();
  } else if (!parse_rules_file(rules_path, rules, err)) {
    std::cerr << "benchdiff: " << err << "\n";
    return 2;
  }

  Json base_json, cand_json;
  if (!load_json(files[0], base_json, err) ||
      !load_json(files[1], cand_json, err)) {
    std::cerr << "benchdiff: " << err << "\n";
    return 2;
  }
  std::map<std::string, Leaf> base, cand;
  flatten(base_json, "", base);
  flatten(cand_json, "", cand);

  // Union of paths, in baseline order first (std::map keeps both sorted,
  // so the merged walk is deterministic).
  std::vector<Row> rows;
  std::size_t gated = 0, regressions = 0, improvements = 0;
  auto rule_for = [&rules](const std::string& path) -> const Rule* {
    for (const Rule& r : rules) {
      if (glob_match(r.pattern.c_str(), path.c_str())) return &r;
    }
    return nullptr;
  };
  auto bi = base.begin();
  auto ci = cand.begin();
  while (bi != base.end() || ci != cand.end()) {
    Row row;
    const Rule* rule = nullptr;
    if (ci == cand.end() || (bi != base.end() && bi->first < ci->first)) {
      // Present in the baseline only: a gated metric vanishing from the
      // candidate is a regression (the bench stopped reporting it).
      row.path = bi->first;
      row.base = leaf_str(bi->second);
      row.cand = "(missing)";
      rule = rule_for(row.path);
      const bool hard = rule != nullptr && rule->kind != Kind::kInfo &&
                        !(lenient_timings && rule->timing);
      row.verdict = hard ? Verdict::kRegression : Verdict::kInfo;
      ++bi;
    } else if (bi == base.end() || ci->first < bi->first) {
      row.path = ci->first;
      row.base = "(missing)";
      row.cand = leaf_str(ci->second);
      rule = rule_for(row.path);
      row.verdict = Verdict::kInfo;  // new metrics never fail the gate
      ++ci;
    } else {
      row.path = bi->first;
      const Leaf& b = bi->second;
      const Leaf& c = ci->second;
      row.base = leaf_str(b);
      row.cand = leaf_str(c);
      if (b.is_num && c.is_num && b.num != 0.0) {
        row.delta = fmt_num((c.num - b.num) / (b.num < 0 ? -b.num : b.num) *
                            100.0) + "%";
      }
      rule = rule_for(row.path);
      row.verdict = judge(*rule, b, c, lenient_timings);
      ++bi;
      ++ci;
    }
    row.rule = rule;
    if (row.verdict != Verdict::kInfo) ++gated;
    if (row.verdict == Verdict::kRegression) ++regressions;
    if (row.verdict == Verdict::kBetter) ++improvements;
    rows.push_back(std::move(row));
  }

  dlion::common::Table table(
      {"metric", "baseline", "candidate", "delta", "rule", "verdict"});
  std::size_t hidden = 0;
  for (const Row& row : rows) {
    if (row.verdict == Verdict::kInfo && !show_all) {
      ++hidden;
      continue;
    }
    std::string rule_desc = kind_name(
        (lenient_timings && row.rule->timing) ? Kind::kInfo : row.rule->kind);
    if (row.rule->rel_pct > 0.0) rule_desc += " " + fmt_num(row.rule->rel_pct) + "%";
    if (row.rule->abs_tol > 0.0) rule_desc += " abs " + fmt_num(row.rule->abs_tol);
    table.row()
        .cell(row.path)
        .cell(row.base)
        .cell(row.cand)
        .cell(row.delta.empty() ? "-" : row.delta)
        .cell(rule_desc)
        .cell(verdict_str(row.verdict));
  }
  std::cout << "benchdiff: " << files[0] << " -> " << files[1] << "\n";
  if (table.num_rows() > 0) table.print(std::cout);
  std::cout << rows.size() << " metrics, " << gated << " gated, "
            << regressions << " regression(s), " << improvements
            << " improvement(s)";
  if (hidden > 0) std::cout << " (" << hidden << " info rows hidden; --all shows them)";
  std::cout << "\n";
  return regressions > 0 ? 1 : 0;
}
